"""Pass 2: the determinism AST linter.

PR 1 made byte-identical determinism a load-bearing invariant: a pooled
sweep must equal a serial one, and the result cache is content-addressed
on the canonical point spec.  Anything that injects ambient state —
wall clocks, global RNGs, environment variables, unordered set
iteration — silently breaks both.  This pass walks the Python ``ast``
of the source tree and reports:

========  ============================================================
DT201     wall-clock calls (``time.time``, ``datetime.now``, …);
          the monotonic ``time.perf_counter`` stays allowed because
          runtimes are reported as explicitly volatile measurements
DT202     any call through the stdlib global ``random`` module
DT203     seedless ``np.random.default_rng()`` and the legacy global
          NumPy RNG (``np.random.seed`` / ``rand`` / …), plus
          ``os.urandom`` / ``uuid.uuid4`` / ``secrets.*``
DT204     ``os.environ`` / ``os.getenv`` outside the CLI boundary
          (``cli.py``, ``conftest.py``)
DT205     iterating a syntactic ``set`` expression (set literal,
          set comprehension, ``set(...)`` / ``frozenset(...)`` call);
          error inside fingerprint-feeding modules (``sweep/``),
          warning elsewhere
DT206     mutable default arguments
DT207     ``None`` default on a parameter annotated with a
          non-Optional type
========  ============================================================

Suppression: append ``# daos-lint: disable=DT204`` (comma-separated
codes, or a bare ``disable`` for all) to the offending line.  Findings
that predate the linter can instead live in a committed baseline file
(:mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .diagnostics import Diagnostic, Severity, make_diagnostic

__all__ = ["LintConfig", "lint_source", "lint_file", "lint_paths"]


@dataclass(frozen=True)
class LintConfig:
    """Knobs of the determinism and dataflow passes."""

    #: Basenames allowed to read the environment (DT204).
    env_allowed_files: Tuple[str, ...] = ("cli.py", "conftest.py")
    #: A path containing one of these parts feeds sweep fingerprints:
    #: DT205 (and DF320) escalate from warning to error there.
    fingerprint_parts: Tuple[str, ...] = ("sweep",)
    #: Methods allowed to store ndarray slice views on ``self`` (DF302):
    #: the flat-table design's sanctioned write-through rebinding points.
    bind_methods: Tuple[str, ...] = ("_bind", "__init__", "__post_init__")
    #: Files whose basename starts with one of these prefixes are frozen
    #: differential oracles (pre-refactor code kept verbatim for
    #: comparison benchmarks); both AST passes skip them entirely.
    legacy_file_prefixes: Tuple[str, ...] = ("_legacy_",)


#: Resolved dotted call targets that read a wall clock.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: Legacy global NumPy RNG entry points (module-level state).
_NUMPY_GLOBAL_RNG = {
    "numpy.random." + name
    for name in (
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "bytes",
    )
}

#: Other ambient entropy sources, reported as DT203.
_AMBIENT_RNG_CALLS = {"os.urandom", "uuid.uuid4"}

_MUTABLE_DEFAULT_CALLS = {"list", "dict", "set", "frozenset"}

_SUPPRESS_RE = re.compile(
    r"#\s*daos-lint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE
)


def _suppressed_codes(line_text: str) -> Optional[frozenset]:
    """Codes suppressed on this source line; empty frozenset means all,
    None means no suppression comment."""
    match = _SUPPRESS_RE.search(line_text)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return frozenset()
    return frozenset(code.strip().upper() for code in codes.split(",") if code.strip())


class _ImportTable:
    """Maps local names to the dotted paths they were imported as."""

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.partition(".")[0]
            # `import numpy.random` binds `numpy`; `import numpy as np`
            # binds `np` -> numpy.
            target = alias.name if alias.asname else alias.name.partition(".")[0]
            self.aliases[local] = target

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative imports never reach the banned stdlib names
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute chain through the aliases,
        or None when the root is not an imported name."""
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        root = self.aliases.get(cursor.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _annotation_requires_value(annotation: Optional[ast.AST]) -> bool:
    """True when the annotation names a concrete (non-Optional) type, so
    a ``None`` default contradicts it (DT207).

    Deliberately conservative: anything that *could* admit None —
    ``Optional[...]``, ``Union[...]``, ``X | None``, ``Any``,
    ``object``, string annotations — passes.
    """
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant):
        return False  # string annotations: don't try to parse them
    if isinstance(annotation, ast.BinOp):
        return False  # X | Y unions may include None
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        name = head.attr if isinstance(head, ast.Attribute) else (
            head.id if isinstance(head, ast.Name) else None
        )
        return name not in ("Optional", "Union", "Any")
    if isinstance(annotation, ast.Name):
        return annotation.id not in ("Any", "object", "None")
    if isinstance(annotation, ast.Attribute):
        return annotation.attr not in ("Any",)
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, filename: str, config: LintConfig) -> None:
        self.filename = filename
        self.config = config
        self.imports = _ImportTable()
        self.diagnostics: List[Diagnostic] = []
        name = Path(filename).name
        self.env_allowed = name in config.env_allowed_files
        parts = Path(filename).parts
        self.in_fingerprint_module = any(
            part in config.fingerprint_parts for part in parts
        )

    # -- helpers -------------------------------------------------------
    def emit(self, code: str, message: str, node: ast.AST,
             severity: Optional[Severity] = None) -> None:
        diag = make_diagnostic(
            code,
            message,
            file=self.filename,
            line=getattr(node, "lineno", None),
            column=(getattr(node, "col_offset", None) or 0) + 1
            if getattr(node, "lineno", None) is not None
            else None,
            source="ast",
        )
        if severity is not None and severity is not diag.severity:
            diag = Diagnostic(
                code=diag.code,
                severity=severity,
                message=diag.message,
                file=diag.file,
                line=diag.line,
                column=diag.column,
                source=diag.source,
            )
        self.diagnostics.append(diag)

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        self.imports.add_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.add_import_from(node)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.imports.resolve(node.func)
        if resolved is not None:
            self._check_call(resolved, node)
        self.generic_visit(node)

    def _check_call(self, resolved: str, node: ast.Call) -> None:
        if resolved in _WALL_CLOCK_CALLS:
            self.emit(
                "DT201",
                f"call to wall-clock source {resolved}(); derive virtual time "
                f"from the simulation clock, or use time.perf_counter for "
                f"explicitly volatile measurements",
                node,
            )
            return
        if resolved == "random" or resolved.startswith("random."):
            self.emit(
                "DT202",
                f"call through the global random module ({resolved}); use an "
                f"explicitly seeded np.random.Generator instead",
                node,
            )
            return
        if resolved == "numpy.random.default_rng":
            if not node.args and not any(
                kw.arg in (None, "seed") for kw in node.keywords
            ):
                self.emit(
                    "DT203",
                    "np.random.default_rng() without a seed draws entropy "
                    "from the OS; pass an explicit seed",
                    node,
                )
            return
        if resolved in _NUMPY_GLOBAL_RNG:
            self.emit(
                "DT203",
                f"{resolved}() uses NumPy's global RNG state; construct a "
                f"seeded np.random.default_rng(seed) instead",
                node,
            )
            return
        if resolved in _AMBIENT_RNG_CALLS or resolved.startswith("secrets."):
            self.emit(
                "DT203",
                f"{resolved}() is an ambient entropy source; all randomness "
                f"must come from an explicit seed",
                node,
            )
            return
        if resolved == "os.getenv":
            self._emit_env(node, "os.getenv")

    # -- environment reads ---------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        resolved = self.imports.resolve(node)
        if resolved == "os.environ":
            self._emit_env(node, "os.environ")
        self.generic_visit(node)

    def _emit_env(self, node: ast.AST, what: str) -> None:
        if self.env_allowed:
            return
        self.emit(
            "DT204",
            f"{what} read outside the CLI boundary; environment-dependent "
            f"behaviour belongs in cli.py (or conftest.py for tests) so "
            f"library results stay a pure function of their parameters",
            node,
        )

    # -- unordered iteration -------------------------------------------
    def _check_iteration(self, iter_node: ast.AST) -> None:
        if not _is_set_expression(iter_node):
            return
        severity = Severity.ERROR if self.in_fingerprint_module else Severity.WARNING
        where = (
            "this module feeds sweep fingerprints — iteration order changes "
            "cache keys and sweep byte-identity"
            if self.in_fingerprint_module
            else "set iteration order is not deterministic across processes"
        )
        self.emit(
            "DT205",
            f"iteration over a bare set; wrap it in sorted(...) ({where})",
            iter_node,
            severity=severity,
        )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- function signatures -------------------------------------------
    def _check_function(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        defaults: List[Tuple[ast.arg, Optional[ast.AST]]] = []
        pos_defaults = list(args.defaults)
        for arg, default in zip(
            positional[len(positional) - len(pos_defaults):], pos_defaults
        ):
            defaults.append((arg, default))
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                defaults.append((arg, default))
        for arg, default in defaults:
            if default is None:
                continue
            if isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_DEFAULT_CALLS
                and not default.args
                and not default.keywords
            ):
                self.emit(
                    "DT206",
                    f"mutable default for parameter {arg.arg!r} is shared "
                    f"across calls; default to None and construct inside the "
                    f"function",
                    default,
                )
            elif (
                isinstance(default, ast.Constant)
                and default.value is None
                and _annotation_requires_value(arg.annotation)
            ):
                annotation = ast.unparse(arg.annotation)
                self.emit(
                    "DT207",
                    f"parameter {arg.arg!r} is annotated {annotation} but "
                    f"defaults to None; annotate it Optional[{annotation}]",
                    default,
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _apply_suppressions(
    diagnostics: List[Diagnostic], source_lines: Sequence[str]
) -> List[Diagnostic]:
    kept = []
    for diag in diagnostics:
        if diag.line is not None and 1 <= diag.line <= len(source_lines):
            codes = _suppressed_codes(source_lines[diag.line - 1])
            if codes is not None and (not codes or diag.code in codes):
                continue
        kept.append(diag)
    return kept


def lint_source(
    source: str, filename: str, config: Optional[LintConfig] = None
) -> List[Diagnostic]:
    """Lint one module's source text — both the determinism (DT2xx) and
    the dataflow (DF3xx) pass; suppression comments applied to the
    combined findings.  Frozen ``_legacy_*`` oracles are skipped."""
    config = config if config is not None else LintConfig()
    if Path(filename).name.startswith(tuple(config.legacy_file_prefixes)):
        return []
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        # A file that does not parse cannot be vouched for; report it
        # instead of crashing the lint run.
        return [
            make_diagnostic(
                "DT200",
                f"file does not parse: {exc.msg}",
                file=filename,
                line=exc.lineno,
                source="ast",
            )
        ]
    visitor = _Visitor(filename, config)
    visitor.visit(tree)
    diagnostics = list(visitor.diagnostics)
    # Pass 3 shares the tree walk conceptually but keeps its own visitor
    # (module: repro.lint.dataflow); findings merge into one report.
    from .dataflow import DataflowConfig, dataflow_source

    diagnostics.extend(
        dataflow_source(
            source,
            filename,
            DataflowConfig(
                bind_methods=config.bind_methods,
                fingerprint_parts=config.fingerprint_parts,
            ),
        )
    )
    return _apply_suppressions(diagnostics, source.splitlines())


def lint_file(
    path: Union[str, Path],
    config: Optional[LintConfig] = None,
    *,
    display_path: Optional[str] = None,
) -> List[Diagnostic]:
    path = Path(path)
    return lint_source(
        path.read_text(encoding="utf-8"),
        display_path if display_path is not None else str(path),
        config,
    )


def lint_paths(
    paths: Iterable[Union[str, Path]],
    config: Optional[LintConfig] = None,
    *,
    relative_to: Optional[Path] = None,
) -> List[Diagnostic]:
    """Lint files and directory trees (``**/*.py``), in sorted order.

    ``relative_to`` shortens diagnostic paths (and therefore baseline
    entries) to be location-independent.
    """
    config = config if config is not None else LintConfig()
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    out: List[Diagnostic] = []
    for file_path in files:
        display = str(file_path)
        if relative_to is not None:
            try:
                display = file_path.resolve().relative_to(
                    relative_to.resolve()
                ).as_posix()
            except ValueError:
                display = str(file_path)
        out.extend(lint_file(file_path, config, display_path=display))
    return out
