"""The Auto-tuning Runtime — paper §3.3–3.5.

Tuning a scheme's thresholds by hand "could be difficult and
time-consuming even for experts" (§3.3); the runtime automates it:

1. redefine the problem as choosing the *aggressiveness* of the scheme's
   action (for the paper's reclamation scheme: the ``min_age`` below
   which memory is left alone);
2. collapse performance and memory efficiency into one *score* through a
   user-defined function with an SLA clamp (Listing 2);
3. spend the user's time budget on samples — 60% spread over the whole
   aggressiveness range, 40% concentrated near the best point seen;
4. fit a polynomial of degree ``nr_samples / 3`` to the noisy samples
   and pick the highest peak of the fitted curve by its gradient.
"""

from .fit import TrendEstimate, estimate_trend, find_peaks
from .runtime import AutoTuner, TuningResult
from .sampler import SamplePlan, plan_samples
from .score import ScoreFunction, default_score_function

__all__ = [
    "AutoTuner",
    "SamplePlan",
    "ScoreFunction",
    "TrendEstimate",
    "TuningResult",
    "default_score_function",
    "estimate_trend",
    "find_peaks",
    "plan_samples",
]
