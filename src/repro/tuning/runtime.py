"""The auto-tuner: orchestrating sampling, fitting and peak selection.

The runtime takes (§3.5 "Inputs"): the base scheme to tune, the workload
to run, a time limit, and optionally custom metrics / a custom score
function.  Here the workload execution is abstracted behind an
``evaluate`` callable so the tuner itself is pure control logic —
``repro.runner.autotune`` wires it to real simulated runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import FaultError, TuningError
from ..trace.bus import TraceBus
from ..trace.events import RetryAttempted, TuneStep
from .fit import TrendEstimate, estimate_trend, find_peaks
from .sampler import SamplePlan, nr_samples_for_budget
from .score import ScoreFunction, default_score_function

__all__ = ["AutoTuner", "TuningResult"]


@dataclass
class TuningResult:
    """Everything a tuning session produced (enough to redraw Figure 5)."""

    best_param: float
    best_score: float
    global_samples: List[Tuple[float, float]]  # (param, score), phase 1
    local_samples: List[Tuple[float, float]]  # (param, score), phase 2
    trend: TrendEstimate
    peaks: List[Tuple[float, float]]

    @property
    def samples(self) -> List[Tuple[float, float]]:
        return sorted(self.global_samples + self.local_samples)


class AutoTuner:
    """Tunes one scalar aggressiveness parameter.

    Parameters
    ----------
    evaluate:
        ``evaluate(param) -> (runtime_us, rss_bytes)`` — run the workload
        with the scheme configured at ``param`` and measure.
    baseline:
        ``(orig_runtime_us, orig_rss_bytes)`` of the unmodified system.
    lo, hi:
        The aggressiveness range to search (for the paper's reclamation
        scheme: ``min_age`` from 0 to 60 seconds; note aggressiveness
        *decreases* as ``min_age`` grows).
    score_function:
        Defaults to the paper's Listing 2.
    """

    def __init__(
        self,
        evaluate: Callable[[float], Tuple[float, float]],
        baseline: Tuple[float, float],
        lo: float,
        hi: float,
        *,
        score_function: Optional[ScoreFunction] = None,
        seed: int = 0,
        trace: Optional[TraceBus] = None,
        faults=None,
        probe_attempts: int = 3,
        probe_backoff_us: int = 100_000,
    ):
        if probe_attempts < 1:
            raise TuningError(f"probe_attempts must be at least 1: {probe_attempts}")
        if probe_backoff_us <= 0:
            raise TuningError(f"probe backoff must be positive: {probe_backoff_us}")
        if hi <= lo:
            raise TuningError(f"empty parameter range [{lo}, {hi}]")
        self.evaluate = evaluate
        self.orig_runtime, self.orig_rss = baseline
        if self.orig_runtime <= 0 or self.orig_rss <= 0:
            raise TuningError("baseline runtime and RSS must be positive")
        self.lo = float(lo)
        self.hi = float(hi)
        self.score_function = (
            score_function if score_function is not None else default_score_function()
        )
        self.rng = np.random.default_rng(seed)
        #: Optional trace bus; every sample emits a :class:`TuneStep`.
        self.trace = trace
        #: Optional :class:`repro.faults.FaultInjector`; probes are
        #: retried with exponential backoff when ``probe_failure`` fires.
        self.faults = faults
        self.probe_attempts = int(probe_attempts)
        self.probe_backoff_us = int(probe_backoff_us)
        # The tuner has no event queue: cumulative virtual time spent
        # tuning (sample runtimes + retry backoffs) is tracked here and
        # mirrored to an owned trace clock.  Fault windows key off it.
        self._sim_now = 0

    # ------------------------------------------------------------------
    def _advance(self, us: int) -> None:
        self._sim_now += int(us)
        tr = self.trace
        if tr is not None and tr.owns_clock:
            tr.advance_to(tr.now + int(us))

    def _probe(self, param: float) -> Tuple[float, float]:
        """One probe attempt: an injected failure raises before the
        evaluation runs (a lost/corrupt measurement)."""
        if self.faults is not None and self.faults.probe_fails(self._sim_now):
            raise FaultError(f"injected probe failure at param={param:g}")
        return self.evaluate(param)

    def _score_at(self, param: float, phase: str = "global") -> float:
        attempt = 0
        backoff = self.probe_backoff_us
        while True:
            try:
                runtime, rss = self._probe(param)
                break
            except FaultError as exc:
                attempt += 1
                if attempt >= self.probe_attempts:
                    raise TuningError(
                        f"probe at param={param:g} failed {attempt} time(s), "
                        f"giving up: {exc}"
                    ) from exc
                # Back off in *simulated* time — the retry schedule is
                # deterministic and replays with the plan.
                self._advance(backoff)
                tr = self.trace
                if tr is not None:
                    tr.emit(
                        RetryAttempted(
                            time_us=tr.now,
                            subsystem="tuner",
                            attempt=attempt,
                            backoff_us=int(backoff),
                            reason=str(exc),
                        )
                    )
                backoff *= 2
        score = self.score_function(runtime, rss, self.orig_runtime, self.orig_rss)
        self._advance(int(runtime))
        tr = self.trace
        if tr is not None:
            tr.emit(
                TuneStep(
                    time_us=tr.now,
                    phase=phase,
                    param=float(param),
                    score=float(score),
                    runtime_us=float(runtime),
                    rss_bytes=float(rss),
                )
            )
        return score

    def tune(self, nr_samples: int) -> TuningResult:
        """One tuning session with an explicit sample budget."""
        self.score_function.reset()
        plan = SamplePlan(lo=self.lo, hi=self.hi, nr_samples=nr_samples, rng=self.rng)

        global_samples = [(p, self._score_at(p)) for p in plan.global_points()]
        best_so_far = max(global_samples, key=lambda pair: pair[1])[0]
        local_samples = [
            (p, self._score_at(p, "local")) for p in plan.local_points(best_so_far)
        ]

        samples = global_samples + local_samples
        xs = [p for p, _ in samples]
        ys = [s for _, s in samples]
        trend = estimate_trend(xs, ys, self.lo, self.hi)
        peaks = find_peaks(trend)
        best_param, _fitted_score = peaks[0]
        # Validation run: a low-degree fit can hallucinate a peak at a
        # range edge (especially against the SLA cliff).  Measure the
        # fitted optimum once and fall back to the best *measured*
        # sample if it does better.
        best_score = self._score_at(best_param, "validate")
        sampled_best_param, sampled_best_score = max(samples, key=lambda p: p[1])
        if sampled_best_score > best_score:
            best_param, best_score = sampled_best_param, sampled_best_score
        return TuningResult(
            best_param=best_param,
            best_score=best_score,
            global_samples=global_samples,
            local_samples=local_samples,
            trend=trend,
            peaks=peaks,
        )

    def tune_with_budget(self, time_limit_us: int, unit_work_us: int) -> TuningResult:
        """The paper's interface: a wall-time budget and the per-sample
        cost; the affordable sample count falls out."""
        return self.tune(nr_samples_for_budget(time_limit_us, unit_work_us))
