"""Sample planning: spending the time budget (§3.5 "Sampling").

"The runtime system first calculates the number of available samples by
dividing the total limit time by unit work time.  Then, it randomly
picks nr_samples combinations ... the system first randomly picks only
60% of nr_samples samples to explore the global parameter space and
picks the remaining 40% samples near the parameters which have shown the
highest scores."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import TuningError

__all__ = ["SamplePlan", "plan_samples", "nr_samples_for_budget"]

#: Share of samples used for the global exploration phase.
GLOBAL_SHARE = 0.6
#: Width of the local refinement neighbourhood as a share of the range.
LOCAL_WINDOW = 0.15


def nr_samples_for_budget(time_limit_us: int, unit_work_us: int) -> int:
    """Samples affordable within the user's time limit."""
    if unit_work_us <= 0:
        raise TuningError("unit work time must be positive")
    n = time_limit_us // unit_work_us
    if n < 2:
        detail = (
            "the budget does not cover even one unit of work"
            if n == 0
            else "fitting a trend needs at least two samples"
        )
        raise TuningError(
            f"tuning budget {time_limit_us}us affords {n} sample(s) at "
            f"{unit_work_us}us each: {detail}"
        )
    return int(n)


@dataclass
class SamplePlan:
    """The two-phase sample schedule for one tuning session."""

    lo: float
    hi: float
    nr_samples: int
    rng: np.random.Generator

    def __post_init__(self):
        if self.hi <= self.lo:
            raise TuningError(f"empty parameter range [{self.lo}, {self.hi}]")
        if self.nr_samples < 2:
            raise TuningError("need at least 2 samples")

    @property
    def nr_global(self) -> int:
        return max(1, int(round(self.nr_samples * GLOBAL_SHARE)))

    @property
    def nr_local(self) -> int:
        return self.nr_samples - self.nr_global

    def global_points(self) -> List[float]:
        """Phase 1: uniform-random exploration over the whole range."""
        points = self.lo + self.rng.random(self.nr_global) * (self.hi - self.lo)
        return sorted(float(p) for p in points)

    def local_points(self, best: float) -> List[float]:
        """Phase 2: refinement around the best point seen so far."""
        if not self.lo <= best <= self.hi:
            raise TuningError(f"best point {best} outside [{self.lo}, {self.hi}]")
        if self.nr_local == 0:
            return []
        window = (self.hi - self.lo) * LOCAL_WINDOW
        points = best + (self.rng.random(self.nr_local) * 2.0 - 1.0) * window
        clipped = np.clip(points, self.lo, self.hi)
        return sorted(float(p) for p in clipped)


def plan_samples(
    lo: float, hi: float, nr_samples: int, rng: np.random.Generator
) -> SamplePlan:
    """Build a :class:`SamplePlan` (thin constructor kept for symmetry
    with :func:`nr_samples_for_budget`)."""
    return SamplePlan(lo=lo, hi=hi, nr_samples=nr_samples, rng=rng)
