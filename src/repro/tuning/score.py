"""Score functions: one number from (performance, memory efficiency).

The paper's Listing 2, verbatim in spirit::

    pscore = -1 * (runtime / orig_runtime - 1)
    mscore = -1 * (rss / orig_rss - 1)
    if pscore > -0.1:                 # SLA: at most 10% slowdown
        score = 0.5 * pscore + 0.5 * mscore
        prev_scores.append(score)
        return score
    return min(prev_scores)

The SLA clamp is what steers the tuner away from thrashing
configurations: any sample violating the SLA scores *worse than every
sample seen so far*, so the fitted curve collapses on that side.

Scores are reported ×100 (percent points) to match the Figure 4/8 axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import TuningError

__all__ = ["ScoreFunction", "default_score_function"]


@dataclass
class ScoreFunction:
    """Weighted performance/memory score with an SLA floor.

    ``perf_weight`` and ``memory_weight`` express the user's preference;
    ``max_slowdown`` is the SLA (0.1 = "no more than 10% performance
    drop").  The object is stateful across one tuning session: SLA
    violations return the worst score seen so far (Listing 2's
    ``min(prev_scores)``), or ``floor`` if nothing has been seen yet.
    """

    perf_weight: float = 0.5
    memory_weight: float = 0.5
    max_slowdown: float = 0.1
    scale: float = 100.0
    floor: float = -100.0
    prev_scores: List[float] = field(default_factory=list)

    def __post_init__(self):
        if self.perf_weight < 0 or self.memory_weight < 0:
            raise TuningError("score weights must be non-negative")
        if self.perf_weight + self.memory_weight == 0:
            raise TuningError("at least one score weight must be positive")
        if self.max_slowdown < 0:
            raise TuningError("max_slowdown must be non-negative")

    # ------------------------------------------------------------------
    def __call__(
        self, runtime_us: float, rss_bytes: float, orig_runtime_us: float, orig_rss_bytes: float
    ) -> float:
        if orig_runtime_us <= 0 or orig_rss_bytes <= 0:
            raise TuningError("baseline runtime and RSS must be positive")
        pscore = -1.0 * (runtime_us / orig_runtime_us - 1.0)
        mscore = -1.0 * (rss_bytes / orig_rss_bytes - 1.0)
        if pscore > -self.max_slowdown:
            score = (self.perf_weight * pscore + self.memory_weight * mscore) * self.scale
            self.prev_scores.append(score)
            return score
        if self.prev_scores:
            return min(self.prev_scores)
        return self.floor

    def reset(self) -> None:
        """Clear session state (call between tuning sessions)."""
        self.prev_scores.clear()


def default_score_function() -> ScoreFunction:
    """The paper's Listing 2: equal weights, 10% slowdown SLA."""
    return ScoreFunction()
