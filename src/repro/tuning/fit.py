"""Trend estimation: polynomial fitting and gradient peak search (§3.5).

"To get the relationship while mitigating the random score noise, we use
polynomial curve fitting.  The degree is set as nr_samples/3 to avoid
over-fitting.  On the fitted curve, the system finds peaks using
gradients and finally applies the configuration of the peak having the
highest score."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import TuningError

__all__ = ["TrendEstimate", "estimate_trend", "find_peaks"]


@dataclass(frozen=True)
class TrendEstimate:
    """A fitted score-vs-aggressiveness curve."""

    coefficients: Tuple[float, ...]  # numpy polyfit order (highest first)
    lo: float
    hi: float
    degree: int

    def __call__(self, x) -> np.ndarray:
        return np.polyval(self.coefficients, x)

    def grid(self, n: int = 200) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate the fitted curve on an ``n``-point grid (plotting)."""
        xs = np.linspace(self.lo, self.hi, n)
        return xs, self(xs)


def fit_degree(nr_samples: int) -> int:
    """The paper's over-fitting guard: degree = nr_samples / 3."""
    return max(1, nr_samples // 3)


def estimate_trend(
    xs: Sequence[float], scores: Sequence[float], lo: float, hi: float
) -> TrendEstimate:
    """Least-squares polynomial fit over the collected samples."""
    xs = np.asarray(xs, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if xs.shape != scores.shape or xs.ndim != 1:
        raise TuningError("xs and scores must be equal-length 1-D sequences")
    if xs.size < 2:
        raise TuningError(f"need at least 2 samples to fit, got {xs.size}")
    degree = min(fit_degree(xs.size), xs.size - 1)
    # Normalise x into [0, 1] for conditioning, then absorb the transform
    # back into evaluation via the stored range.
    if hi <= lo:
        raise TuningError(f"empty fit range [{lo}, {hi}]")
    with np.errstate(all="ignore"):
        coeffs = np.polyfit((xs - lo) / (hi - lo), scores, degree)
    return _ScaledTrend(tuple(float(c) for c in coeffs), lo, hi, degree)


class _ScaledTrend(TrendEstimate):
    """Trend whose polynomial lives in normalised coordinates."""

    def __call__(self, x) -> np.ndarray:
        t = (np.asarray(x, dtype=np.float64) - self.lo) / (self.hi - self.lo)
        return np.polyval(self.coefficients, t)


def find_peaks(trend: TrendEstimate) -> List[Tuple[float, float]]:
    """Peaks of the fitted curve via its gradient's roots.

    Returns ``[(x, score), ...]`` sorted by score descending; range
    endpoints are always candidates (the best configuration can sit at
    zero or maximum aggressiveness — Figure 3 patterns 1 and 6).
    """
    poly = np.asarray(trend.coefficients, dtype=np.float64)
    candidates_t = [0.0, 1.0]
    if poly.size > 1:
        derivative = np.polyder(poly)
        roots = np.roots(derivative) if derivative.size > 1 else np.array([])
        for root in np.atleast_1d(roots):
            if abs(root.imag) < 1e-9 and 0.0 <= root.real <= 1.0:
                candidates_t.append(float(root.real))
    span = trend.hi - trend.lo
    xs = [trend.lo + t * span for t in candidates_t]
    scored = [(x, float(trend(x))) for x in xs]
    scored.sort(key=lambda pair: pair[1], reverse=True)
    return scored
