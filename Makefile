# Convenience targets for the DAOS reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full examples figures clean lint fleet-smoke resume-smoke

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Static analysis: the project's own linter (scheme semantics +
# determinism AST pass + DF3xx dataflow pass; fails on error-severity
# findings) over the package AND the test/benchmark trees, then ruff
# and mypy when installed (`pip install -e .[lint]`).  The frozen
# `_legacy_*.py` oracles are exempt by filename prefix.
lint:
	$(PYTHON) -m repro.cli lint src/repro --paths tests --paths benchmarks
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests benchmarks; \
	else echo "ruff not installed; skipping (pip install -e .[lint])"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy || true; \
	else echo "mypy not installed; skipping (pip install -e .[lint])"; fi

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for ex in examples/*.py; do echo "=== $$ex ==="; $(PYTHON) $$ex; done

# The fleet acceptance bar, locally: a seeded 10k-tenant fleet run
# twice under the sanitizer, canonical summaries byte-identical.
fleet-smoke:
	DAOS_SANITIZE=1 $(PYTHON) -m repro.cli --seed 42 fleet -n 10000 --out /tmp/daos-fleet-a.json
	DAOS_SANITIZE=1 $(PYTHON) -m repro.cli --seed 42 fleet -n 10000 --out /tmp/daos-fleet-b.json
	cmp /tmp/daos-fleet-a.json /tmp/daos-fleet-b.json
	@echo "fleet smoke: byte-identical under the sanitizer"

# Crash-recovery proof from the CLI (the tier-1 property tests do the
# arbitrary-epoch and SIGKILL versions): a checkpointed fleet resumed
# from its midpoint snapshot must produce the same canonical summary
# as the uninterrupted run, and a journaled sweep replayed with
# --resume into a *fresh* cache must produce the same canonical report
# — proving the values come from the write-ahead journal, not the cache.
resume-smoke:
	rm -rf /tmp/daos-resume-smoke && mkdir -p /tmp/daos-resume-smoke
	DAOS_SANITIZE=1 $(PYTHON) -m repro.cli --seed 42 fleet -n 500 \
		--checkpoint /tmp/daos-resume-smoke/fleet.ckpt \
		--out /tmp/daos-resume-smoke/fleet-full.json
	DAOS_SANITIZE=1 $(PYTHON) -m repro.cli resume /tmp/daos-resume-smoke/fleet.ckpt \
		--out /tmp/daos-resume-smoke/fleet-resumed.json
	cmp /tmp/daos-resume-smoke/fleet-full.json /tmp/daos-resume-smoke/fleet-resumed.json
	$(PYTHON) -m repro.cli --time-scale 0.05 sweep \
		--workloads parsec3/swaptions --configs baseline,prcl --seeds 0,1 -j 2 \
		--journal /tmp/daos-resume-smoke/wal --cache-dir /tmp/daos-resume-smoke/cache-a \
		--out /tmp/daos-resume-smoke/sweep-full.json
	$(PYTHON) -m repro.cli --time-scale 0.05 sweep \
		--workloads parsec3/swaptions --configs baseline,prcl --seeds 0,1 -j 2 \
		--journal /tmp/daos-resume-smoke/wal --resume \
		--cache-dir /tmp/daos-resume-smoke/cache-b \
		--out /tmp/daos-resume-smoke/sweep-resumed.json
	cmp /tmp/daos-resume-smoke/sweep-full.json /tmp/daos-resume-smoke/sweep-resumed.json
	@echo "resume smoke: checkpoint and journal replay are byte-identical"

# One figure/table at a time, e.g. `make fig7`.
fig%:
	$(PYTHON) -m pytest benchmarks/bench_fig$*_*.py --benchmark-only -s

table%:
	$(PYTHON) -m pytest benchmarks/bench_table$*_*.py --benchmark-only -s

clean:
	rm -rf benchmarks/out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
