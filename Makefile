# Convenience targets for the DAOS reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full examples figures clean lint fleet-smoke

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Static analysis: the project's own linter (scheme semantics +
# determinism AST pass + DF3xx dataflow pass; fails on error-severity
# findings) over the package AND the test/benchmark trees, then ruff
# and mypy when installed (`pip install -e .[lint]`).  The frozen
# `_legacy_*.py` oracles are exempt by filename prefix.
lint:
	$(PYTHON) -m repro.cli lint src/repro --paths tests --paths benchmarks
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests benchmarks; \
	else echo "ruff not installed; skipping (pip install -e .[lint])"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy || true; \
	else echo "mypy not installed; skipping (pip install -e .[lint])"; fi

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for ex in examples/*.py; do echo "=== $$ex ==="; $(PYTHON) $$ex; done

# The fleet acceptance bar, locally: a seeded 10k-tenant fleet run
# twice under the sanitizer, canonical summaries byte-identical.
fleet-smoke:
	DAOS_SANITIZE=1 $(PYTHON) -m repro.cli --seed 42 fleet -n 10000 --out /tmp/daos-fleet-a.json
	DAOS_SANITIZE=1 $(PYTHON) -m repro.cli --seed 42 fleet -n 10000 --out /tmp/daos-fleet-b.json
	cmp /tmp/daos-fleet-a.json /tmp/daos-fleet-b.json
	@echo "fleet smoke: byte-identical under the sanitizer"

# One figure/table at a time, e.g. `make fig7`.
fig%:
	$(PYTHON) -m pytest benchmarks/bench_fig$*_*.py --benchmark-only -s

table%:
	$(PYTHON) -m pytest benchmarks/bench_table$*_*.py --benchmark-only -s

clean:
	rm -rf benchmarks/out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
