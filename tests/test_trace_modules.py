"""Trace stories of the reclaim and LRU-sort modules.

These tests run the same pressure scenarios as ``test_modules.py`` but
assert on the *trace* instead of the stats: the bus must tell the full
causal story — sampling, aggregation, watermark activation, quota
charges, scheme application, and the resulting pageout batches.
"""

from repro.modules.lru_sort import LruSortModule, LruSortParams
from repro.modules.reclaim import ReclaimModule, ReclaimParams
from repro.monitor.attrs import MonitorAttrs
from repro.sim.kernel import SimKernel
from repro.sim.machine import GuestSpec, get_instance
from repro.sim.swap import ZramDevice
from repro.trace import (
    PageoutBatch,
    QuotaCharged,
    SchemeApplied,
    TraceBus,
    WatermarkTransition,
)
from repro.units import MIB, MSEC

from tests.helpers import BASE, run_epochs

FAST = MonitorAttrs(
    sampling_interval_us=1 * MSEC,
    aggregation_interval_us=20 * MSEC,
    regions_update_interval_us=200 * MSEC,
    min_nr_regions=10,
    max_nr_regions=200,
)


def make_traced_kernel(queue, dram_mib, swap_mib=128, seed=7):
    bus = TraceBus(queue.clock, ring_capacity=0)
    collected = []
    bus.subscribe_all(collected.append)
    guest = GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=dram_mib * MIB)
    kernel = SimKernel(guest, swap=ZramDevice(swap_mib * MIB), seed=seed, trace=bus)
    return bus, collected, kernel


class TestReclaimTrace:
    def test_pressure_story(self, queue):
        """Under pressure the trace shows: monitoring ticks, the low-free
        watermark activating, quota charges, pageout schemes applying,
        and physical pageout batches moving memory out."""
        bus, events, kernel = make_traced_kernel(queue, dram_mib=64)
        kernel.mmap(BASE, 64 * MIB)
        module = ReclaimModule(
            kernel, ReclaimParams(min_age_us=200 * MSEC), FAST, trace=bus
        )
        module.start(queue)
        kernel.apply_access(BASE, BASE + 44 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 4 * MIB, touches_per_page=2000)],
            n_epochs=30,
        )

        assert bus.counts.get("AccessSampled", 0) > 0
        assert bus.counts.get("RegionsAggregated", 0) > 0

        activations = [
            e for e in events if isinstance(e, WatermarkTransition) and e.active
        ]
        assert activations, "pressure never activated the reclaim watermarks"

        applied = [e for e in events if isinstance(e, SchemeApplied)]
        assert applied and all(e.action == "pageout" for e in applied)
        assert sum(e.bytes_applied for e in applied) > 8 * MIB

        charges = [e for e in events if isinstance(e, QuotaCharged)]
        assert charges, "reclaim quota is limited, so charges must appear"
        assert all(e.charged_bytes > 0 for e in charges)

        batches = [e for e in events if isinstance(e, PageoutBatch) and e.phys]
        assert batches, "applied pageout schemes must produce phys batches"
        assert sum(b.paged_out_pages for b in batches) * 4096 > 8 * MIB

    def test_quiet_kernel_applies_no_schemes(self, queue):
        """Without pressure the watermarks hold the module off: monitoring
        events flow but no scheme ever applies."""
        bus, events, kernel = make_traced_kernel(queue, dram_mib=256)
        kernel.mmap(BASE, 64 * MIB)
        module = ReclaimModule(
            kernel, ReclaimParams(min_age_us=100 * MSEC), FAST, trace=bus
        )
        module.start(queue)
        kernel.apply_access(BASE, BASE + 32 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(kernel, queue, [], n_epochs=20)
        assert bus.counts.get("AccessSampled", 0) > 0
        assert bus.counts.get("SchemeApplied", 0) == 0
        assert not [e for e in events if isinstance(e, WatermarkTransition) and e.active]


class TestLruSortTrace:
    def test_both_directions_traced(self, queue):
        """The LRU-sort trace must show schemes applying in both
        directions: hot regions prioritised, cold regions deprioritised."""
        bus, events, kernel = make_traced_kernel(queue, dram_mib=256)
        kernel.mmap(BASE, 64 * MIB)
        module = LruSortModule(
            kernel, LruSortParams(cold_min_age_us=200 * MSEC), FAST, trace=bus
        )
        module.start(queue)
        kernel.apply_access(BASE, BASE + 64 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 8 * MIB, touches_per_page=2000)],
            n_epochs=25,
        )
        actions = {e.action for e in events if isinstance(e, SchemeApplied)}
        assert actions == {"lru_prio", "lru_deprio"}
        # Sorting moves no data: no pageout batches, no reclaim passes.
        assert bus.counts.get("PageoutBatch", 0) == 0
        assert bus.counts.get("ReclaimPass", 0) == 0
