"""The SimSanitizer runtime: seeded state mutations must be caught.

Each mutation test corrupts one piece of redundant simulation state the
way a plausible kernel/monitor/engine bug would — a present bit cleared
without releasing its frame, a drifted O(1) counter, a region-table gap,
a quota charged past its window — and asserts the matching checker
reports it.  Clean state yields zero violations, a disabled sanitizer is
inert, and a sanitized run returns byte-identical results to an
unsanitized one (the overhead/identity contract the CI sanitizer job
enforces tree-wide).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import SanitizerError
from repro.monitor.attrs import MonitorAttrs
from repro.monitor.core import DataAccessMonitor
from repro.monitor.primitives import VirtualPrimitive
from repro.runner.experiment import run_experiment
from repro.sanitize import SimSanitizer, default_enabled, set_default_enabled
from repro.schemes.actions import Action
from repro.schemes.engine import SchemesEngine
from repro.schemes.quotas import Quota
from repro.schemes.scheme import AccessPattern, Scheme
from repro.sim.kernel import SimKernel
from repro.sim.machine import GuestSpec, get_instance
from repro.sim.pagetable import PAGES_PER_HUGE
from repro.sim.swap import ZramDevice
from repro.sim.thp import ThpPolicy
from repro.units import MIB, MSEC

BASE = 0x7F00_0000_0000
EPOCH = 100 * MSEC


def worked_kernel():
    """A kernel with interesting state: resident, swapped, and (after a
    khugepaged scan) huge-mapped pages."""
    guest = GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=64 * MIB)
    kernel = SimKernel(
        guest,
        swap=ZramDevice(32 * MIB),
        thp=ThpPolicy(mode="always"),
        seed=7,
        oom_policy="shed",
    )
    kernel.mmap(BASE, 32 * MIB)
    kernel.apply_access(BASE, BASE + 16 * MIB, 0, EPOCH, write_fraction=0.5)
    kernel.pageout(BASE + 8 * MIB, BASE + 12 * MIB, EPOCH)
    kernel.khugepaged_scan(EPOCH)
    kernel.end_epoch(EPOCH, compute_us=70_000)
    kernel.begin_epoch()
    return kernel


def checks_found(*, kernel=None, monitor=None, engine=None, now=0):
    """Names of the checks that fired in one explicit sanitizer pass."""
    sanitizer = SimSanitizer(raise_on_violation=False)
    found = sanitizer.check_all(kernel=kernel, monitor=monitor, engine=engine, now=now)
    assert found == sanitizer.violations
    return {violation.check for violation in found}


def started_monitor(kernel, queue=None):
    attrs = MonitorAttrs(
        sampling_interval_us=1 * MSEC,
        aggregation_interval_us=20 * MSEC,
        regions_update_interval_us=200 * MSEC,
        min_nr_regions=10,
        max_nr_regions=200,
    )
    monitor = DataAccessMonitor(VirtualPrimitive(kernel), attrs, seed=3)
    if queue is None:
        monitor.init_regions()
    else:
        monitor.start(queue)
    return monitor


def quota_engine(kernel, size_bytes=MIB):
    scheme = Scheme(
        pattern=AccessPattern(),
        action=Action.PAGEOUT,
        quota=Quota(size_bytes=size_bytes),
    )
    return SchemesEngine(kernel, [scheme]), scheme


# ----------------------------------------------------------------------
# Clean state: zero violations
# ----------------------------------------------------------------------
class TestCleanState:
    def test_worked_kernel_is_clean(self):
        assert checks_found(kernel=worked_kernel()) == set()

    def test_monitor_and_engine_are_clean(self):
        kernel = worked_kernel()
        monitor = started_monitor(kernel)
        engine, _ = quota_engine(kernel)
        assert checks_found(kernel=kernel, monitor=monitor, engine=engine) == set()


# ----------------------------------------------------------------------
# Seeded kernel-state mutations
# ----------------------------------------------------------------------
class TestKernelMutations:
    def test_present_cleared_without_frame_release(self):
        # The buggy-munmap shape: the page vanishes from the page table
        # but its frame stays allocated.
        kernel = worked_kernel()
        flat = kernel.space.flat
        idx = np.flatnonzero(flat.present & (flat.frame >= 0))[0]
        flat.present[idx] = False
        assert "frame_conservation" in checks_found(kernel=kernel)

    def test_present_and_swapped_both_set(self):
        kernel = worked_kernel()
        flat = kernel.space.flat
        idx = np.flatnonzero(flat.present)[0]
        flat.swapped[idx] = True
        assert "present_swapped_exclusivity" in checks_found(kernel=kernel)

    def test_swap_usage_counter_drift(self):
        kernel = worked_kernel()
        kernel.swap.used_pages += 3
        assert checks_found(kernel=kernel) == {"present_swapped_exclusivity"}

    def test_allocated_counter_drift(self):
        kernel = worked_kernel()
        kernel.frames.allocated += 1
        assert checks_found(kernel=kernel) == {"frame_conservation"}

    def test_orphaned_frame_owner(self):
        kernel = worked_kernel()
        live = kernel.frames.allocated_frames()
        kernel.frames.owner_vma[live[0]] = -1
        found = SimSanitizer(raise_on_violation=False).check_all(kernel=kernel)
        assert any(
            v.check == "frame_conservation" and "rmap owner" in v.message for v in found
        )

    def test_page_loses_its_frame(self):
        kernel = worked_kernel()
        flat = kernel.space.flat
        idx = np.flatnonzero(flat.present & (flat.frame >= 0))[0]
        flat.frame[idx] = -1
        assert "frame_conservation" in checks_found(kernel=kernel)

    def test_resident_counter_drift(self):
        kernel = worked_kernel()
        kernel.space.vmas[0].pages.n_present += 1
        assert "counter_coherence" in checks_found(kernel=kernel)

    def test_swapped_counter_drift(self):
        kernel = worked_kernel()
        kernel.space.vmas[0].pages.n_swapped += 1
        # The per-VMA counter and the device usage cross-check both see it.
        assert "counter_coherence" in checks_found(kernel=kernel)

    def test_huge_chunk_not_fully_resident(self):
        kernel = worked_kernel()
        flat = kernel.space.flat
        counts = flat.chunk_present_counts()
        partial = np.flatnonzero(counts != PAGES_PER_HUGE)
        assert partial.size, "the worked kernel should have a partial chunk"
        flat.chunk_huge[partial[0]] = True
        assert "huge_residency" in checks_found(kernel=kernel)


# ----------------------------------------------------------------------
# Seeded monitor-state mutations
# ----------------------------------------------------------------------
class TestMonitorMutations:
    def test_region_tiling_gap(self):
        kernel = worked_kernel()
        monitor = started_monitor(kernel)
        monitor._ra.end[-1] -= 4096
        assert "region_tiling" in checks_found(monitor=monitor)

    def test_region_overlap(self):
        kernel = worked_kernel()
        monitor = started_monitor(kernel)
        monitor._ra.start[1] -= 4096
        assert "region_tiling" in checks_found(monitor=monitor)

    def test_view_cache_desync(self):
        kernel = worked_kernel()
        monitor = started_monitor(kernel)
        views = monitor.regions  # populate the cache at this generation
        assert views is monitor._views
        monitor._views.pop()
        assert "region_views" in checks_found(monitor=monitor)


# ----------------------------------------------------------------------
# Seeded engine-state mutations
# ----------------------------------------------------------------------
class TestQuotaMutations:
    def test_negative_charge(self):
        kernel = worked_kernel()
        engine, scheme = quota_engine(kernel)
        scheme.quota._charged = -5
        assert checks_found(engine=engine) == {"quota_sanity"}

    def test_charge_past_the_window_budget(self):
        kernel = worked_kernel()
        engine, scheme = quota_engine(kernel)
        scheme.quota._charged = scheme.quota.size_bytes + 4096
        assert checks_found(engine=engine) == {"quota_sanity"}

    def test_unlimited_quota_exempt(self):
        kernel = worked_kernel()
        engine, _ = quota_engine(kernel)
        engine.schemes[0].quota = None
        assert checks_found(engine=engine) == set()


# ----------------------------------------------------------------------
# Runtime behaviour: raising, wiring, reporting
# ----------------------------------------------------------------------
class TestRuntime:
    def test_checkpoint_raises_with_structured_violations(self):
        kernel = worked_kernel()
        kernel.frames.allocated += 1
        sanitizer = SimSanitizer()
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.checkpoint_kernel(kernel, now=2 * EPOCH)
        err = excinfo.value
        assert err.violations and err.violations[0].check == "frame_conservation"
        assert err.violations[0].epoch == 0
        assert len(err.violations[0].digest) == 12
        assert "frame_conservation" in str(err)

    def test_disabled_sanitizer_is_inert(self):
        kernel = worked_kernel()
        kernel.frames.allocated += 1
        sanitizer = SimSanitizer(enabled=False)
        sanitizer.checkpoint_kernel(kernel, now=0)
        assert sanitizer.check_all(kernel=kernel) == []
        assert sanitizer.violations == [] and sanitizer.epochs_checked == 0

    def test_end_epoch_checkpoint_is_wired(self):
        kernel = worked_kernel()
        kernel.sanitizer = SimSanitizer()
        kernel.space.vmas[0].pages.n_present += 1
        with pytest.raises(SanitizerError):
            kernel.end_epoch(2 * EPOCH, compute_us=70_000)

    def test_monitor_tick_checkpoint_is_wired(self):
        from repro.sim.clock import EventQueue

        kernel = worked_kernel()
        queue = EventQueue()
        monitor = started_monitor(kernel, queue=queue)
        monitor.sanitizer = SimSanitizer()
        queue.run_for(100 * MSEC)
        assert monitor.sanitizer.monitor_checkpoints > 0
        assert monitor.sanitizer.violations == []

    def test_summary_one_liner(self):
        sanitizer = SimSanitizer()
        sanitizer.checkpoint_kernel(worked_kernel(), now=0)
        assert sanitizer.summary() == (
            "sanitizer enabled: 1 epoch checkpoint(s), 0 monitor checkpoint(s), "
            "0 violation(s)"
        )

    def test_default_toggle_roundtrip(self):
        previous = default_enabled()
        try:
            set_default_enabled(True)
            assert default_enabled() is True
            set_default_enabled(False)
            assert default_enabled() is False
        finally:
            set_default_enabled(previous)


# ----------------------------------------------------------------------
# End-to-end: sanitized runs are clean and byte-identical
# ----------------------------------------------------------------------
def _comparable(result):
    payload = dataclasses.asdict(result)
    payload.pop("wall_clock_us")  # volatile: host wall clock
    payload.pop("snapshots")  # recorded objects, compared via metrics
    return payload


class TestEndToEnd:
    def test_sanitized_run_is_clean_and_checkpointed(self):
        sanitizer = SimSanitizer()
        run_experiment(
            "parsec3/swaptions", config="prcl", time_scale=0.02, sanitize=sanitizer
        )
        assert sanitizer.epochs_checked > 0
        assert sanitizer.monitor_checkpoints > 0
        assert sanitizer.violations == []

    def test_results_identical_with_and_without_sanitizer(self):
        kwargs = dict(config="prcl", time_scale=0.02, seed=5)
        plain = run_experiment("parsec3/swaptions", sanitize=False, **kwargs)
        checked = run_experiment("parsec3/swaptions", sanitize=True, **kwargs)
        assert _comparable(plain) == _comparable(checked)
