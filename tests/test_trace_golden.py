"""Golden determinism: identical runs produce byte-identical traces.

Two layers of goldens live here:

* whole-trace byte identity across same-seed runs (any event type);
* committed **kernel-event fixtures** — the canonical ReclaimPass /
  PageoutBatch / ThpPromotion streams of two fixed pressure scenarios,
  pinned under ``tests/fixtures/``.  These catch silent changes to the
  kernel's reclaim/promotion behaviour or event payloads.  To refresh
  after an intentional change: ``REPRO_REGEN_GOLDEN=1 python -m pytest
  tests/test_trace_golden.py`` and commit the rewritten fixtures.
"""

import io
import json
import os
from dataclasses import fields
from pathlib import Path

import pytest

from repro.runner.experiment import run_experiment
from repro.sim.machine import scaled_instance
from repro.trace import (
    JsonlTraceSink,
    TraceBus,
    encode_event,
    read_trace,
    validate_trace_file,
)
from repro.trace.events import PageoutBatch, ReclaimPass, ThpPromotion
from repro.units import MIB, SEC
from repro.workloads.base import WorkloadSpec
from repro.workloads.patterns import ColdInit, CyclicSweep, Hotspot

FIXTURES = Path(__file__).parent / "fixtures"

WORKLOAD = "parsec3/swaptions"
CONFIG = "prcl"
SEED = 5
TIME_SCALE = 0.02


def traced_run():
    """One fixed run with a full JSONL capture; returns (text, bus)."""
    bus = TraceBus(ring_capacity=0)
    buffer = io.StringIO()
    sink = JsonlTraceSink(buffer)
    bus.subscribe_all(sink)
    result = run_experiment(
        WORKLOAD, config=CONFIG, seed=SEED, time_scale=TIME_SCALE, trace=bus
    )
    return buffer.getvalue(), bus, result


@pytest.fixture(scope="module")
def golden():
    return traced_run()


class TestGoldenTrace:
    def test_byte_identical_across_runs(self, golden):
        text_a, _, result_a = golden
        text_b, _, result_b = traced_run()
        assert text_a == text_b
        assert result_a.trace_summary == result_b.trace_summary

    def test_trace_is_nonempty_and_monotone(self, golden):
        text, bus, _ = golden
        lines = text.splitlines()
        assert len(lines) == bus.n_events > 0
        times = [e.time_us for e in read_trace(lines)]
        assert times == sorted(times)

    def test_reencode_reproduces_lines(self, golden):
        """decode → encode is the identity on canonical lines."""
        text, _, _ = golden
        lines = text.splitlines()
        assert [encode_event(e) for e in read_trace(lines)] == lines

    def test_validate_summary_matches_bus(self, golden):
        text, bus, result = golden
        summary = validate_trace_file(text.splitlines())
        assert summary == bus.summary()
        assert result.trace_summary == summary.as_dict()

    def test_expected_event_mix(self, golden):
        """The prcl run at this scale monitors but never triggers schemes
        (min_age outruns the shrunk run), so the trace carries the
        monitoring and epoch story only."""
        _, bus, _ = golden
        assert bus.counts.get("AccessSampled", 0) > 0
        assert bus.counts.get("RegionsAggregated", 0) > 0
        assert bus.counts.get("EpochEnd", 0) > 0


#: The kernel's own event types: all-int payloads, stable goldens.
KERNEL_EVENTS = (ReclaimPass, PageoutBatch, ThpPromotion)


def _kernel_event_lines(workload, config, *, dram_scale, seed=9):
    """Run one experiment and return its kernel events, canonically
    encoded, in emission order."""
    bus = TraceBus(ring_capacity=0)
    buffer = io.StringIO()
    bus.subscribe_all(JsonlTraceSink(buffer))
    run_experiment(
        workload,
        config=config,
        machine=scaled_instance("i3.metal", dram_scale=dram_scale),
        seed=seed,
        oom_policy="shed",
        trace=bus,
    )
    return [
        encode_event(e)
        for e in read_trace(buffer.getvalue().splitlines())
        if isinstance(e, KERNEL_EVENTS)
    ]


def _thp_pressure_spec():
    """khugepaged bloat against small DRAM: ReclaimPass + ThpPromotion."""
    fp = 192 * MIB
    return WorkloadSpec(
        name="thp-golden",
        suite="golden",
        footprint=fp,
        duration_us=2 * SEC,
        components=(
            CyclicSweep(0, fp - 16 * MIB, period_us=2 * SEC, touches_per_sec=400),
            Hotspot(fp - 4 * MIB, 4 * MIB),
        ),
    )


def _prcl_cold_spec():
    """Cold-init data aging past the prcl scheme's 5s min_age:
    PageoutBatch (scheme PAGEOUT) + ReclaimPass (watermarks)."""
    fp = 96 * MIB
    return WorkloadSpec(
        name="prcl-golden",
        suite="golden",
        footprint=fp,
        duration_us=10 * SEC,
        components=(
            ColdInit(0, 64 * MIB, init_us=2 * SEC),
            Hotspot(fp - 4 * MIB, 4 * MIB),
        ),
    )


class TestKernelEventGoldens:
    CASES = {
        "kernel_trace_thp.jsonl": (
            _thp_pressure_spec, "thp", 1 / 1024, (ReclaimPass, ThpPromotion)),
        "kernel_trace_prcl.jsonl": (
            _prcl_cold_spec, "prcl", 1 / 512, (ReclaimPass, PageoutBatch)),
    }

    @pytest.mark.parametrize("fixture", sorted(CASES))
    def test_kernel_stream_matches_fixture(self, fixture):
        spec_fn, config, dram_scale, expected_types = self.CASES[fixture]
        lines = _kernel_event_lines(spec_fn(), config, dram_scale=dram_scale)
        assert lines, "scenario emitted no kernel events"
        names = {json.loads(line)["ev"] for line in lines}
        for etype in expected_types:
            assert etype.__name__ in names, f"no {etype.__name__} in stream"
        path = FIXTURES / fixture
        if os.environ.get("REPRO_REGEN_GOLDEN") == "1":  # daos-lint: disable=DT204
            path.write_text("\n".join(lines) + "\n")
        assert path.exists(), (
            f"missing golden fixture {path} — regenerate with "
            "REPRO_REGEN_GOLDEN=1"
        )
        assert lines == path.read_text().splitlines()


class TestNoSwapPageout:
    """Figure 9 "No Swap": a PAGEOUT against a full (zero-capacity) swap
    device must still emit a PageoutBatch — with zero pages — so trace
    consumers see the attempt instead of silence."""

    def test_pageout_emits_zero_page_batch(self):
        from repro.sim.kernel import SimKernel
        from repro.sim.machine import GuestSpec, get_instance
        from repro.sim.swap import NoSwapDevice

        base = 0x7F00_0000_0000
        guest = GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=256 * MIB)
        bus = TraceBus(ring_capacity=0)
        seen = []
        bus.subscribe(PageoutBatch, seen.append)
        kernel = SimKernel(guest, swap=NoSwapDevice(), seed=7, trace=bus)
        kernel.mmap(base, 4 * MIB)
        kernel.apply_access(base, base + 4 * MIB, now=0, epoch_us=100_000)
        paged_out = kernel.pageout(base, base + 4 * MIB, now=200_000)
        assert paged_out == 0
        assert len(seen) == 1, "swap-full PAGEOUT attempt was not traced"
        assert seen[0].paged_out_pages == 0
        assert seen[0].written_back_pages == 0
        # The pages never left DRAM.
        assert kernel.rss_bytes() == 4 * MIB
        assert kernel.swap.used_pages == 0  # nothing was ever stored
        assert kernel.swap.free_pages() == 0

    def test_untouched_range_still_silent(self):
        """No reclaimable candidates at all → no event (unchanged)."""
        from repro.sim.kernel import SimKernel
        from repro.sim.machine import GuestSpec, get_instance
        from repro.sim.swap import NoSwapDevice

        base = 0x7F00_0000_0000
        guest = GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=256 * MIB)
        bus = TraceBus(ring_capacity=0)
        seen = []
        bus.subscribe(PageoutBatch, seen.append)
        kernel = SimKernel(guest, swap=NoSwapDevice(), seed=7, trace=bus)
        kernel.mmap(base, 4 * MIB)
        assert kernel.pageout(base, base + 4 * MIB, now=0) == 0
        assert seen == []


class TestTracingIsInert:
    def test_results_identical_with_and_without_tracing(self):
        """Tracing consumes no randomness and perturbs no accounting."""
        _, _, traced = traced_run()
        untraced = run_experiment(
            WORKLOAD,
            config=CONFIG,
            seed=SEED,
            time_scale=TIME_SCALE,
            collect_trace=False,
        )
        assert untraced.trace_summary is None
        for f in fields(traced):
            if f.name in ("wall_clock_us", "trace_summary"):
                continue
            assert getattr(traced, f.name) == getattr(untraced, f.name), f.name
