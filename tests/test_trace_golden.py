"""Golden determinism: identical runs produce byte-identical traces."""

import io
from dataclasses import fields

import pytest

from repro.runner.experiment import run_experiment
from repro.trace import (
    JsonlTraceSink,
    TraceBus,
    encode_event,
    read_trace,
    validate_trace_file,
)

WORKLOAD = "parsec3/swaptions"
CONFIG = "prcl"
SEED = 5
TIME_SCALE = 0.02


def traced_run():
    """One fixed run with a full JSONL capture; returns (text, bus)."""
    bus = TraceBus(ring_capacity=0)
    buffer = io.StringIO()
    sink = JsonlTraceSink(buffer)
    bus.subscribe_all(sink)
    result = run_experiment(
        WORKLOAD, config=CONFIG, seed=SEED, time_scale=TIME_SCALE, trace=bus
    )
    return buffer.getvalue(), bus, result


@pytest.fixture(scope="module")
def golden():
    return traced_run()


class TestGoldenTrace:
    def test_byte_identical_across_runs(self, golden):
        text_a, _, result_a = golden
        text_b, _, result_b = traced_run()
        assert text_a == text_b
        assert result_a.trace_summary == result_b.trace_summary

    def test_trace_is_nonempty_and_monotone(self, golden):
        text, bus, _ = golden
        lines = text.splitlines()
        assert len(lines) == bus.n_events > 0
        times = [e.time_us for e in read_trace(lines)]
        assert times == sorted(times)

    def test_reencode_reproduces_lines(self, golden):
        """decode → encode is the identity on canonical lines."""
        text, _, _ = golden
        lines = text.splitlines()
        assert [encode_event(e) for e in read_trace(lines)] == lines

    def test_validate_summary_matches_bus(self, golden):
        text, bus, result = golden
        summary = validate_trace_file(text.splitlines())
        assert summary == bus.summary()
        assert result.trace_summary == summary.as_dict()

    def test_expected_event_mix(self, golden):
        """The prcl run at this scale monitors but never triggers schemes
        (min_age outruns the shrunk run), so the trace carries the
        monitoring and epoch story only."""
        _, bus, _ = golden
        assert bus.counts.get("AccessSampled", 0) > 0
        assert bus.counts.get("RegionsAggregated", 0) > 0
        assert bus.counts.get("EpochEnd", 0) > 0


class TestTracingIsInert:
    def test_results_identical_with_and_without_tracing(self):
        """Tracing consumes no randomness and perturbs no accounting."""
        _, _, traced = traced_run()
        untraced = run_experiment(
            WORKLOAD,
            config=CONFIG,
            seed=SEED,
            time_scale=TIME_SCALE,
            collect_trace=False,
        )
        assert untraced.trace_summary is None
        for f in fields(traced):
            if f.name in ("wall_clock_us", "trace_summary"):
                continue
            assert getattr(traced, f.name) == getattr(untraced, f.name), f.name
