"""The fleet layer: tenants, the shared pool, the batched scheduler.

Covers the multi-tenant contract end to end:

* tenant specs derive from *global* indices — a tenant looks the same
  whichever shard simulates it;
* the batched scheduler is deterministic (same seed → same digest →
  byte-identical canonical JSON) and sanitizer-clean;
* the shared pool couples tenants: a tight pool evicts, a loose pool
  does not, and the watermark policy is the same object the kernel
  honors;
* sharded runs merge deterministically and agree between the serial
  and spawn-pool sweep paths;
* the corrupted-state checkers actually fire (the sanitizer's fleet
  checkpoint is only as good as :func:`check_fleet_state`).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.fleet import (
    FleetConfig,
    FleetFramePool,
    FleetScheduler,
    build_tenant_spec,
    build_tenant_specs,
    run_fleet,
    run_fleet_sharded,
    shard_grid,
)
from repro.runner.experiment import build_machine
from repro.sanitize import SimSanitizer
from repro.sanitize.checkers import check_fleet_state
from repro.sim.kernel import SimKernel, Watermarks
from repro.sim.machine import GuestSpec, get_instance
from repro.sim.swap import ZramDevice
from repro.sim.pagetable import PAGE_SIZE
from repro.trace import TraceBus
from repro.units import MIB
from repro.workloads.registry import all_workloads
from repro.workloads.serverless import serverless_layout, serverless_spec

SMALL = dict(n_tenants=40, duration_s=90.0, footprint_mib=32, arrival_window_s=15.0)


# ----------------------------------------------------------------------
# Layout: serverless tiling, registry tiling, tenant workload tiling
# ----------------------------------------------------------------------
class TestServerlessLayout:
    @given(
        footprint_mib=st.integers(min_value=3, max_value=4096),
        cold_share=st.floats(
            min_value=0.001, max_value=0.999, allow_nan=False, allow_infinity=False
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_layout_tiles_exactly(self, footprint_mib, cold_share):
        footprint = footprint_mib * MIB
        cold, hot, warm = serverless_layout(footprint, cold_share)
        assert cold + hot + warm == footprint
        assert cold >= MIB and hot >= MIB and warm >= MIB
        assert cold % MIB == 0 and hot % MIB == 0 and warm % MIB == 0

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ConfigError):
            serverless_layout(64 * MIB, 0.0)
        with pytest.raises(ConfigError):
            serverless_layout(64 * MIB, 1.0)
        with pytest.raises(ConfigError):
            serverless_layout(2 * MIB, 0.9)

    def test_extreme_shares_stay_inside_footprint(self):
        # The old unclamped max(MIB, ...) layout overflowed here.
        spec = serverless_spec(footprint_mib=3, cold_share=0.01, duration_s=60)
        assert all(
            c.offset + c.size <= spec.footprint for c in spec.components
        )
        spec = serverless_spec(footprint_mib=4, cold_share=0.99, duration_s=60)
        assert all(
            c.offset + c.size <= spec.footprint for c in spec.components
        )


def _assert_tiles(spec) -> None:
    comps = sorted(spec.components, key=lambda c: c.offset)
    end = 0
    for comp in comps:
        assert comp.offset >= end, (
            f"{spec.full_name}: {type(comp).__name__} overlaps the previous "
            f"component ({comp.offset:#x} < {end:#x})"
        )
        end = comp.offset + comp.size
    assert end <= spec.footprint


@pytest.mark.parametrize(
    "spec", all_workloads(), ids=lambda spec: spec.full_name
)
def test_registry_workloads_tile_without_overlap(spec):
    _assert_tiles(spec)


@given(
    index=st.integers(min_value=0, max_value=50_000),
    seed=st.integers(min_value=0, max_value=2**31),
    footprint_mib=st.integers(min_value=4, max_value=512),
    cold_share=st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=100, deadline=None)
def test_tenant_workloads_tile_without_overlap(index, seed, footprint_mib, cold_share):
    tenant = build_tenant_spec(
        index,
        base_seed=seed,
        footprint_mib=footprint_mib,
        cold_share=cold_share,
        arrival_window_s=60.0,
    )
    assert tenant.cold + tenant.hot + tenant.warm == tenant.footprint
    _assert_tiles(tenant.to_workload_spec(duration_us=60_000_000))


# ----------------------------------------------------------------------
# Tenants: global-index identity (shard stability)
# ----------------------------------------------------------------------
class TestTenantSpecs:
    def test_traits_keyed_to_global_index(self):
        full = build_tenant_specs(
            base_seed=3, n_tenants=100, footprint_mib=64,
            cold_share=0.9, arrival_window_s=60.0,
        )
        window = build_tenant_specs(
            base_seed=3, n_tenants=100, footprint_mib=64,
            cold_share=0.9, arrival_window_s=60.0, tenant_range=(37, 61),
        )
        assert window == full[37:61]

    def test_distinct_tenants_distinct_traits(self):
        specs = build_tenant_specs(
            base_seed=0, n_tenants=50, footprint_mib=64,
            cold_share=0.9, arrival_window_s=60.0,
        )
        assert len({t.seed for t in specs}) == 50
        assert len({t.footprint for t in specs}) > 1


# ----------------------------------------------------------------------
# Config and pool
# ----------------------------------------------------------------------
class TestFleetConfig:
    def test_params_round_trip(self):
        cfg = FleetConfig(n_tenants=123, duration_s=45.0, pool_gib=2.5, swap="file")
        assert FleetConfig.from_params(cfg.as_params()) == cfg

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_tenants=0),
            dict(duration_s=0.0),
            dict(cold_share=1.0),
            dict(pool_ratio=0.0, pool_gib=0.0),
            dict(swap="tape"),
            dict(min_age_s=-1.0),
            dict(tick_ms=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            FleetConfig(**kwargs)


class TestFleetFramePool:
    def test_charge_release_and_overdraw(self):
        pool = FleetFramePool(10 * PAGE_SIZE)
        pool.charge(6)
        assert pool.free_frames() == 4
        with pytest.raises(ConfigError):
            pool.charge(5)
        pool.release(2)
        assert pool.allocated == 4
        assert pool.peak_allocated == 6

    def test_watermark_coupling_matches_kernel_policy(self):
        marks = Watermarks()
        pool = FleetFramePool(1000 * PAGE_SIZE)
        pool.charge(marks.high_frames(1000) + 1)
        assert pool.over_high(marks)
        target = pool.pressure_target(marks)
        pool.release(target)
        assert not pool.over_high(marks)
        assert pool.allocated <= marks.low_frames(1000)


class TestWatermarks:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Watermarks(high=0.5, low=0.9)
        with pytest.raises(ConfigError):
            Watermarks(high=1.2)

    def test_kernel_defaults_and_override(self):
        guest = GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=256 * MIB)
        kernel = SimKernel(guest, swap=ZramDevice(128 * MIB), seed=1)
        assert kernel.watermarks == Watermarks()
        kernel.watermarks = Watermarks(high=0.5, low=0.4)
        assert kernel.watermarks.high_frames(kernel.frames.n_frames) == int(
            kernel.frames.n_frames * 0.5
        )


# ----------------------------------------------------------------------
# Scheduler: determinism, coupling, sanitizer
# ----------------------------------------------------------------------
class TestFleetScheduler:
    def test_same_seed_same_bytes(self):
        cfg = FleetConfig(seed=9, **SMALL)
        first = run_fleet(cfg, sanitize=True)
        second = run_fleet(cfg, sanitize=True)
        assert first.digest() == second.digest()
        assert first.canonical_json() == second.canonical_json()
        # The digest ignores wall clock; the full dict records it.
        assert "wall_clock_us" not in json.loads(first.canonical_json())
        assert first.as_dict()["wall_clock_us"] > 0

    def test_different_seeds_differ(self):
        a = run_fleet(FleetConfig(seed=1, **SMALL))
        b = run_fleet(FleetConfig(seed=2, **SMALL))
        assert a.digest() != b.digest()

    def test_scheme_reclaims_the_cold_gap(self):
        cfg = FleetConfig(seed=4, **SMALL)
        result = run_fleet(cfg)
        assert result.pageout_pages > 0
        # The paper's production gap: most of the fleet footprint is
        # cold start-up state the scheme pages out.
        assert result.final_resident_bytes < 0.35 * result.total_footprint_bytes
        no_scheme = run_fleet(
            FleetConfig(seed=4, min_age_s=0.0, **SMALL)
        )
        assert no_scheme.pageout_pages == 0
        assert no_scheme.final_resident_bytes > result.final_resident_bytes

    def test_tight_pool_couples_tenants(self):
        tight = run_fleet(
            FleetConfig(seed=6, pool_ratio=0.25, **SMALL), sanitize=True
        )
        loose = run_fleet(
            FleetConfig(seed=6, pool_ratio=1.5, **SMALL), sanitize=True
        )
        assert tight.reclaim_passes > 0 and tight.evicted_pages > 0
        assert loose.evicted_pages == 0
        # Pressure keeps the pool under the high watermark's ceiling.
        assert tight.peak_resident_bytes <= tight.pool_bytes

    def test_monitor_costs_accrue(self):
        result = run_fleet(FleetConfig(seed=2, **SMALL))
        assert result.monitor_checks > 0
        assert result.monitor_cpu_us > 0

    def test_pageout_batches_reach_the_trace_bus(self):
        bus = TraceBus(ring_capacity=0)
        cfg = FleetConfig(seed=4, **SMALL)
        result = run_fleet(cfg, trace=bus)
        counts = bus.summary().counts
        assert counts.get("PageoutBatch", 0) > 0
        # Per-tenant grouping rides the count_groups fast path.
        groups = bus.group_counts.get("PageoutBatch", {})
        assert sum(groups.values()) == result.pageout_batches
        assert all(name.startswith("t") for name in groups)

    def test_fleet_sanitizer_checkpoints_every_tick(self):
        cfg = FleetConfig(seed=1, **SMALL)
        sanitizer = SimSanitizer(enabled=True)
        scheduler = FleetScheduler(cfg, sanitize=sanitizer)
        scheduler.run()
        assert sanitizer.fleet_checkpoints == int(
            cfg.duration_us // cfg.tick_us
        )
        assert sanitizer.violations == []

    def test_checkers_catch_corruption(self):
        scheduler = FleetScheduler(FleetConfig(seed=1, **SMALL))
        scheduler.run()
        assert check_fleet_state(scheduler, now=0) == []
        scheduler.resident[0] += 7  # break pool conservation
        found = check_fleet_state(scheduler, now=0)
        assert found and any("conservation" in v.check for v in found)
        scheduler.resident[0] = scheduler.table.size_pages[0] + 1
        assert any(
            "occupancy" in v.check for v in check_fleet_state(scheduler, now=0)
        )


# ----------------------------------------------------------------------
# Factories: both paths consume the same machine builds
# ----------------------------------------------------------------------
class TestFactories:
    def test_build_machine_resolves_swap_kinds(self):
        for swap, cls_name in (("zram", "ZramDevice"), ("file", "FileSwapDevice"),
                               ("none", "NoSwapDevice")):
            mb = build_machine("i3.metal", swap=swap)
            assert type(mb.swap).__name__ == cls_name
            assert mb.swap_kind == swap
            assert mb.guest.host is mb.host

    def test_fleet_uses_machine_factory_calibration(self):
        scheduler = FleetScheduler(FleetConfig(seed=0, **SMALL))
        proto = build_machine("i3.metal", swap="zram").swap
        assert type(scheduler.swap_device).__name__ == "ZramDevice"
        assert scheduler.swap_device.ratio == proto.ratio


# ----------------------------------------------------------------------
# Shards: pools merge deterministically, serial == spawn pool
# ----------------------------------------------------------------------
class TestShards:
    def test_shard_ranges_cover_exactly(self):
        cfg = FleetConfig(seed=0, **SMALL)
        grid = shard_grid(cfg, 7)
        ranges = [(p.params["lo"], p.params["hi"]) for p in grid.points()]
        assert ranges[0][0] == 0 and ranges[-1][1] == cfg.n_tenants
        assert all(hi == nlo for (_, hi), (nlo, _) in zip(ranges, ranges[1:]))

    def test_invalid_shard_counts(self):
        cfg = FleetConfig(seed=0, **SMALL)
        with pytest.raises(ConfigError):
            shard_grid(cfg, 0)
        with pytest.raises(ConfigError):
            shard_grid(cfg, cfg.n_tenants + 1)

    def test_merge_is_deterministic_and_additive(self):
        cfg = FleetConfig(seed=8, **SMALL)
        merged = run_fleet_sharded(cfg, n_shards=4)
        again = run_fleet_sharded(cfg, n_shards=4)
        assert merged == again
        assert merged["n_tenants"] == cfg.n_tenants
        assert len(merged["shard_digests"]) == 4

    def test_pool_matches_serial(self, tmp_path):
        cfg = FleetConfig(seed=8, **SMALL)
        serial = run_fleet_sharded(cfg, n_shards=2)
        pooled = run_fleet_sharded(cfg, n_shards=2, jobs=2)
        assert serial == pooled
