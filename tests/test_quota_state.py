"""Quota state hygiene: per-run copies must carry *every* config field.

The original ``replace_quota`` hand-copied ``size_bytes`` and
``reset_interval_us`` only — any other field (like the prioritisation
weights) was silently reset to its default in every run, and the
config's quota object could leak charged-window state between runs.
"""

from dataclasses import fields

import pytest

from repro.errors import SchemeError
from repro.runner.configs import PRCL_SCHEMES, ExperimentConfig
from repro.runner.experiment import replace_quota, run_experiment
from repro.schemes.quotas import Quota, priority
from repro.sweep.serialize import fingerprint
from repro.units import MIB, SEC


class TestFreshClone:
    def test_every_dataclass_field_is_copied(self):
        # Distinct non-default value per field, built introspectively:
        # a field added to Quota without updating fresh_clone() fails here.
        original = Quota(
            size_bytes=7 * MIB,
            reset_interval_us=3 * SEC,
            weight_nr_accesses=0.9,
            weight_age=0.1,
        )
        defaults = Quota()
        clone = replace_quota(original)
        for field in fields(Quota):
            value = getattr(original, field.name)
            assert getattr(clone, field.name) == value, f"field {field.name} dropped"
            assert value != getattr(defaults, field.name), (
                f"test must set a non-default value for new field {field.name}"
            )

    def test_clone_has_pristine_window_state(self):
        quota = Quota(size_bytes=1 * MIB)
        quota.charge(512 * 1024, now=0)
        assert quota.remaining(0) == 512 * 1024
        clone = quota.fresh_clone()
        assert clone.remaining(0) == 1 * MIB  # no charged bytes carried over

    def test_weights_validation(self):
        with pytest.raises(SchemeError):
            Quota(weight_nr_accesses=-0.1)
        with pytest.raises(SchemeError):
            Quota(weight_nr_accesses=0.0, weight_age=0.0)


class TestPriorityWeights:
    def test_default_blend_unchanged(self):
        # The historical 50/50 blend is the default behaviour.
        assert priority(10, 50, 20, prefer_cold=False) == pytest.approx(0.5)

    def test_weights_shift_the_ranking(self):
        # An old-but-hot region vs a young-but-cold one: age-dominant
        # weights must prefer the old region for cold actions.
        old_hot = dict(nr_accesses=15, age=80)
        young_cold = dict(nr_accesses=0, age=5)
        by_age = {
            name: priority(
                r["nr_accesses"], r["age"], 20, prefer_cold=True,
                weight_nr_accesses=0.1, weight_age=0.9,
            )
            for name, r in (("old_hot", old_hot), ("young_cold", young_cold))
        }
        by_freq = {
            name: priority(
                r["nr_accesses"], r["age"], 20, prefer_cold=True,
                weight_nr_accesses=0.9, weight_age=0.1,
            )
            for name, r in (("old_hot", old_hot), ("young_cold", young_cold))
        }
        assert by_age["old_hot"] > by_age["young_cold"]
        assert by_freq["young_cold"] > by_freq["old_hot"]


class TestConfigReuse:
    def test_second_run_of_reused_config_unaffected(self):
        """One config object, two runs: the second must be byte-identical
        to a fresh first run (no window state or weight drift)."""
        config = ExperimentConfig(
            name="quota-reuse",
            monitor="vaddr",
            schemes_text=PRCL_SCHEMES,
            quota=Quota(
                size_bytes=8 * MIB,
                reset_interval_us=1 * SEC,
                weight_nr_accesses=0.2,
                weight_age=0.8,
            ),
        )
        kwargs = dict(config=config, machine="i3.metal", seed=9, time_scale=0.02)
        first = run_experiment("parsec3/swaptions", **kwargs)
        second = run_experiment("parsec3/swaptions", **kwargs)
        assert fingerprint(first) == fingerprint(second)
        # The config's own quota object was never mutated by either run.
        assert config.quota.remaining(0) == 8 * MIB
