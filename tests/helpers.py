"""Shared non-fixture helpers for tests."""

from __future__ import annotations

from repro.units import MSEC

#: Base address used by most unit tests (2 MiB aligned).
BASE = 0x7F00_0000_0000


def run_epochs(kernel, queue, bursts, n_epochs, epoch_us=100 * MSEC, compute_us=None):
    """Drive ``n_epochs`` epochs; ``bursts`` is a list of dicts passed to
    ``kernel.apply_access`` (each gets start/end/etc.)."""
    compute_us = compute_us if compute_us is not None else epoch_us * 0.7

    def one_epoch(now):
        kernel.begin_epoch()
        for burst in bursts:
            kernel.apply_access(now=now, epoch_us=epoch_us, **burst)
        kernel.end_epoch(now + epoch_us, compute_us)

    one_epoch(queue.clock.now)
    queue.schedule_periodic(epoch_us, one_epoch)
    queue.run_for(n_epochs * epoch_us)
