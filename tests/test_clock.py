"""Virtual clock and event queue."""

import pytest

from repro.errors import ConfigError
from repro.sim.clock import EventQueue, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0

    def test_custom_start(self):
        assert VirtualClock(500).now == 500

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(1000)
        assert clock.now == 1000

    def test_no_backwards(self):
        clock = VirtualClock(100)
        with pytest.raises(ConfigError):
            clock.advance_to(50)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigError):
            VirtualClock(-1)


class TestEventQueue:
    def test_one_shot_fires_at_time(self):
        queue = EventQueue()
        fired = []
        queue.schedule_at(100, lambda now: fired.append(now))
        queue.run_until(99)
        assert fired == []
        queue.run_until(100)
        assert fired == [100]

    def test_schedule_after(self):
        queue = EventQueue()
        fired = []
        queue.run_until(50)
        queue.schedule_after(25, lambda now: fired.append(now))
        queue.run_until(100)
        assert fired == [75]

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()
        queue.run_until(100)
        with pytest.raises(ConfigError):
            queue.schedule_at(50, lambda now: None)

    def test_same_time_fires_in_registration_order(self):
        queue = EventQueue()
        order = []
        queue.schedule_at(10, lambda now: order.append("a"))
        queue.schedule_at(10, lambda now: order.append("b"))
        queue.schedule_at(10, lambda now: order.append("c"))
        queue.run_until(10)
        assert order == ["a", "b", "c"]

    def test_clock_reaches_deadline_with_empty_queue(self):
        queue = EventQueue()
        queue.run_until(12345)
        assert queue.clock.now == 12345

    def test_periodic_fires_every_period(self):
        queue = EventQueue()
        fired = []
        queue.schedule_periodic(10, lambda now: fired.append(now))
        queue.run_until(35)
        assert fired == [10, 20, 30]

    def test_periodic_phase_offsets_first_firing(self):
        queue = EventQueue()
        fired = []
        queue.schedule_periodic(10, lambda now: fired.append(now), phase=3)
        queue.run_until(25)
        assert fired == [13, 23]

    def test_periodic_cancel(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule_periodic(10, lambda now: fired.append(now))
        queue.run_until(25)
        event.cancel()
        queue.run_until(100)
        assert fired == [10, 20]

    def test_cancel_inside_callback_stops_rescheduling(self):
        queue = EventQueue()
        fired = []
        holder = {}

        def callback(now):
            fired.append(now)
            if len(fired) == 2:
                holder["event"].cancel()

        holder["event"] = queue.schedule_periodic(10, callback)
        queue.run_until(100)
        assert fired == [10, 20]

    def test_zero_period_rejected(self):
        queue = EventQueue()
        with pytest.raises(ConfigError):
            queue.schedule_periodic(0, lambda now: None)

    def test_period_change_takes_effect_lazily(self):
        # The firing at t=10 already queued its successor at t=20 with
        # the old period; the new period applies from there on.
        queue = EventQueue()
        fired = []
        event = queue.schedule_periodic(10, lambda now: fired.append(now))
        queue.run_until(10)
        event.period = 20
        queue.run_until(70)
        assert fired == [10, 20, 40, 60]

    def test_run_for_is_relative(self):
        queue = EventQueue()
        queue.run_until(100)
        fired = []
        queue.schedule_periodic(30, lambda now: fired.append(now))
        queue.run_for(60)
        assert fired == [130, 160]

    def test_events_scheduled_by_events_run_same_pass(self):
        queue = EventQueue()
        fired = []

        def outer(now):
            queue.schedule_at(now + 5, lambda t: fired.append(("inner", t)))
            fired.append(("outer", now))

        queue.schedule_at(10, outer)
        queue.run_until(20)
        assert fired == [("outer", 10), ("inner", 15)]

    def test_dispatch_count(self):
        queue = EventQueue()
        queue.schedule_at(1, lambda now: None)
        queue.schedule_at(2, lambda now: None)
        assert queue.run_until(10) == 2

    def test_len_reflects_pending(self):
        queue = EventQueue()
        queue.schedule_at(5, lambda now: None)
        assert len(queue) == 1
        queue.run_until(5)
        assert len(queue) == 0
