"""``daos lint`` end to end, plus the fail-fast integration points.

The analyzer is only useful if it actually stands between a bad scheme
set and a burned simulation run, so these tests drive the real entry
points: the CLI subcommand, ``run_experiment``, and the sweep preflight.
"""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.errors import SchemeError
from repro.lint import diagnostics_from_json
from repro.runner.configs import CONFIGS, ExperimentConfig
from repro.runner.experiment import run_experiment
from repro.sweep.grid import SweepGrid
from repro.sweep.points import register_point_function
from repro.sweep.runner import SweepRunner

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "bad.schemes")
WARN = str(FIXTURES / "warn.schemes")

THRASH = "min max 80% max min max pageout"


class TestParser:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.command == "lint"
        assert args.paths == []
        assert args.schemes == []
        assert args.format == "text"
        assert args.baseline is None
        assert not args.write_baseline

    def test_lint_options(self):
        args = build_parser().parse_args(
            ["lint", "src", "tests", "--schemes", "a.schemes",
             "--schemes", "b.schemes", "--format", "json"]
        )
        assert args.paths == ["src", "tests"]
        assert args.schemes == ["a.schemes", "b.schemes"]
        assert args.format == "json"


class TestLintCommand:
    def test_bad_schemes_fail_with_all_seeded_codes(self, capsys):
        assert main(["lint", "--schemes", BAD]) == 1
        out = capsys.readouterr().out
        for code in ("DS130", "DS120", "DS103", "DS150"):
            assert code in out, f"missing {code} in:\n{out}"
        assert "6 error(s)" in out

    def test_warning_only_schemes_pass(self, capsys):
        assert main(["lint", "--schemes", WARN]) == 0
        out = capsys.readouterr().out
        assert "DS110" in out and "warning" in out

    def test_json_format_roundtrips(self, capsys):
        assert main(["lint", "--schemes", BAD, "--format", "json"]) == 1
        payload = capsys.readouterr().out
        diags = diagnostics_from_json(payload)
        assert sorted(d.code for d in diags) == [
            "DS103", "DS120", "DS120", "DS120", "DS130", "DS150",
        ]
        # and it is plain JSON a CI consumer can parse directly
        assert json.loads(payload)["format"] == "daos-lint-v1"

    def test_default_target_source_tree_is_clean(self, capsys):
        """`daos lint` with no arguments lints the shipped package —
        and the shipped package must pass its own linter."""
        assert main(["lint"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_write_baseline_then_clean(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        mod = tmp_path / "legacy.py"
        mod.write_text("import time\nstamp = time.time()\n")

        assert main(["lint", "legacy.py"]) == 1
        capsys.readouterr()
        assert main(["lint", "legacy.py", "--write-baseline"]) == 0
        assert (tmp_path / ".daos-lint-baseline.json").exists()
        capsys.readouterr()
        # Grandfathered finding no longer fails, and is reported as such.
        assert main(["lint", "legacy.py"]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out


class TestSchemesCommandAnalysis:
    def test_refuses_error_schemes_before_running(self, capsys):
        # Never reaches the simulator: the workload name is not even
        # resolved, so a bogus one proves the analysis gate came first.
        rc = main(["schemes", "no/such-workload", "-f", BAD])
        assert rc == 1
        err = capsys.readouterr().err
        assert "DS130" in err and "error-severity" in err

    def test_prints_warnings_and_still_runs(self, capsys):
        rc = main(
            ["--time-scale", "0.05", "schemes", "splash2x/volrend", "-f", WARN]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "DS110" in captured.err
        assert "runtime" in captured.out


class TestRunnerFailFast:
    def test_run_experiment_rejects_bad_schemes(self):
        cfg = ExperimentConfig(name="bad", monitor="vaddr", schemes_text=THRASH)
        with pytest.raises(SchemeError, match="DS150"):
            run_experiment("parsec3/freqmine", config=cfg, time_scale=0.05)

    def test_sweep_preflight_rejects_before_any_execution(self, monkeypatch):
        executed = []

        def probe(params):
            executed.append(params)
            return {"ok": True}

        register_point_function("lint_probe", probe)
        monkeypatch.setitem(
            CONFIGS,
            "bad_lint_cfg",
            ExperimentConfig(name="bad_lint_cfg", monitor="vaddr", schemes_text=THRASH),
        )
        grid = SweepGrid.from_axes("lint_probe", {"config": ["bad_lint_cfg"]})
        with pytest.raises(SchemeError, match="DS150"):
            SweepRunner(grid, jobs=1).run()
        assert executed == []  # failed in preflight, not per point

    def test_sweep_preflight_ignores_unknown_config_names(self):
        register_point_function("lint_probe_ok", lambda params: {"ok": True})
        grid = SweepGrid.from_axes("lint_probe_ok", {"config": ["not-a-config"]})
        report = SweepRunner(grid, jobs=1).run()
        assert report.n_failed == 0
