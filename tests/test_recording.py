"""Monitoring record files and heatmap image export."""

import json

import pytest

from repro.analysis.heatmap import build_heatmap
from repro.analysis.recording import (
    heatmap_to_pgm,
    load_record,
    record_metadata,
    save_record,
)
from repro.errors import ConfigError, ParseError
from repro.monitor.snapshot import RegionSnapshot, Snapshot
from repro.units import MIB, SEC

BASE = 0x7F00_0000_0000


def snapshots(n=6):
    out = []
    for i in range(n):
        out.append(
            Snapshot(
                time_us=i * SEC,
                regions=(
                    RegionSnapshot(BASE, BASE + 8 * MIB, 15 + i % 3, i),
                    RegionSnapshot(BASE + 8 * MIB, BASE + 64 * MIB, 0, i),
                ),
                max_nr_accesses=20,
            )
        )
    return out


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.record"
        save_record(snapshots(), path, workload="w", machine="i3.metal")
        loaded = load_record(path)
        original = snapshots()
        assert len(loaded) == len(original)
        for a, b in zip(loaded, original):
            assert a.time_us == b.time_us
            assert a.max_nr_accesses == b.max_nr_accesses
            assert a.regions == b.regions

    def test_metadata(self, tmp_path):
        path = tmp_path / "run.record"
        save_record(
            snapshots(), path, workload="parsec3/x", machine="z1d.metal",
            extra={"seed": 3},
        )
        meta = record_metadata(path)
        assert meta["workload"] == "parsec3/x"
        assert meta["machine"] == "z1d.metal"
        assert meta["extra"] == {"seed": 3}
        assert meta["nr_snapshots"] == 6

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            save_record([], tmp_path / "x.record")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ParseError):
            load_record(path)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "corrupt.record"
        path.write_text("{not json")
        with pytest.raises(ParseError):
            load_record(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ParseError):
            load_record(tmp_path / "nope.record")

    def test_loaded_record_feeds_heatmap(self, tmp_path):
        path = tmp_path / "run.record"
        save_record(snapshots(), path)
        heatmap = build_heatmap(load_record(path), time_bins=6, addr_bins=8)
        assert heatmap.grid.max() > 0


class TestPgmExport:
    def test_valid_pgm(self, tmp_path):
        heatmap = build_heatmap(snapshots(), time_bins=10, addr_bins=5)
        path = heatmap_to_pgm(heatmap, tmp_path / "map.pgm", scale=2)
        data = path.read_bytes()
        assert data.startswith(b"P5\n20 10\n255\n")
        header_len = len(b"P5\n20 10\n255\n")
        assert len(data) == header_len + 20 * 10

    def test_intensity_scaling(self, tmp_path):
        heatmap = build_heatmap(snapshots(), time_bins=4, addr_bins=4)
        path = heatmap_to_pgm(heatmap, tmp_path / "map.pgm", scale=1)
        body = path.read_bytes().split(b"255\n", 1)[1]
        assert max(body) == 255  # normalised so the hottest cell is white

    def test_bad_scale_rejected(self, tmp_path):
        heatmap = build_heatmap(snapshots())
        with pytest.raises(ConfigError):
            heatmap_to_pgm(heatmap, tmp_path / "x.pgm", scale=0)


class TestCliIntegration:
    def test_record_then_report(self, tmp_path, capsys):
        from repro.cli import main

        record = tmp_path / "volrend.record"
        rc = main(
            ["--time-scale", "0.1", "record", "splash2x/volrend", "-o", str(record)]
        )
        assert rc == 0
        assert record.exists()
        capsys.readouterr()
        pgm = tmp_path / "volrend.pgm"
        rc = main(["report", str(record), "--pgm", str(pgm)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "from record" in out
        assert "working set" in out
        assert pgm.read_bytes().startswith(b"P5")
