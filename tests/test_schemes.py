"""Schemes: patterns, parser, Table 1 actions, the engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError, SchemeError
from repro.monitor.attrs import MonitorAttrs
from repro.monitor.region import Region
from repro.schemes.actions import Action, apply_action
from repro.schemes.parser import format_scheme, parse_scheme, parse_schemes
from repro.schemes.scheme import AccessPattern, Scheme
from repro.units import MIB, MINUTE, MSEC, SEC, UNLIMITED

from tests.helpers import BASE

ATTRS = MonitorAttrs()  # 5 ms / 100 ms -> max_nr_accesses = 20
K = 4096


def region(start_k, end_k, nr=0, age=0):
    r = Region(start_k * K, end_k * K)
    r.nr_accesses = nr
    r.age = age
    return r


class TestAccessPattern:
    def test_size_match(self):
        pattern = AccessPattern(min_size=10 * K, max_size=100 * K)
        assert pattern.matches(region(0, 50), ATTRS)
        assert not pattern.matches(region(0, 2), ATTRS)
        assert not pattern.matches(region(0, 200), ATTRS)

    def test_size_bounds_inclusive(self):
        pattern = AccessPattern(min_size=10 * K, max_size=10 * K)
        assert pattern.matches(region(0, 10), ATTRS)

    def test_freq_match(self):
        pattern = AccessPattern(min_freq=0.25, max_freq=1.0)
        assert pattern.matches(region(0, 10, nr=5), ATTRS)  # 5/20 = 25%
        assert not pattern.matches(region(0, 10, nr=4), ATTRS)

    def test_zero_freq_band(self):
        pattern = AccessPattern(min_freq=0.0, max_freq=0.0)
        assert pattern.matches(region(0, 10, nr=0), ATTRS)
        assert not pattern.matches(region(0, 10, nr=1), ATTRS)

    def test_age_match_in_time_units(self):
        pattern = AccessPattern(min_age_us=5 * SEC)
        # 5 s at a 100 ms aggregation = age 50.
        assert pattern.matches(region(0, 10, age=50), ATTRS)
        assert not pattern.matches(region(0, 10, age=49), ATTRS)

    def test_age_max_band(self):
        pattern = AccessPattern(min_age_us=0, max_age_us=1 * SEC)
        assert pattern.matches(region(0, 10, age=10), ATTRS)
        assert not pattern.matches(region(0, 10, age=11), ATTRS)

    def test_unbounded_age(self):
        pattern = AccessPattern(min_age_us=2 * MINUTE)
        assert pattern.matches(region(0, 10, age=10_000_000), ATTRS)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(SchemeError):
            AccessPattern(min_size=10, max_size=5)
        with pytest.raises(SchemeError):
            AccessPattern(min_freq=0.8, max_freq=0.5)
        with pytest.raises(SchemeError):
            AccessPattern(min_age_us=10, max_age_us=5)
        with pytest.raises(SchemeError):
            AccessPattern(min_freq=-0.1)


class TestActionParse:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("pageout", Action.PAGEOUT),
            ("page_out", Action.PAGEOUT),
            ("PAGEOUT", Action.PAGEOUT),
            ("hugepage", Action.HUGEPAGE),
            ("thp", Action.HUGEPAGE),
            ("nohugepage", Action.NOHUGEPAGE),
            ("nothp", Action.NOHUGEPAGE),
            ("willneed", Action.WILLNEED),
            ("cold", Action.COLD),
            ("stat", Action.STAT),
            ("lru_prio", Action.LRU_PRIO),
            ("lru_deprio", Action.LRU_DEPRIO),
        ],
    )
    def test_aliases(self, token, expected):
        assert Action.parse(token) is expected

    def test_unknown_rejected(self):
        with pytest.raises(SchemeError):
            Action.parse("defragment")


class TestParser:
    def test_paper_listing_1_reclamation(self):
        scheme = parse_scheme("min max min min 2m max page_out", ATTRS)
        assert scheme.action is Action.PAGEOUT
        assert scheme.pattern.min_size == 0
        assert scheme.pattern.max_size == UNLIMITED
        assert scheme.pattern.min_freq == 0.0
        assert scheme.pattern.max_freq == 0.0
        assert scheme.pattern.min_age_us == 2 * MINUTE

    def test_paper_listing_1_thp(self):
        scheme = parse_scheme("2MB max 80% max 1m max thp", ATTRS)
        assert scheme.action is Action.HUGEPAGE
        assert scheme.pattern.min_size == 2 * MIB
        assert scheme.pattern.min_freq == pytest.approx(0.8)
        assert scheme.pattern.min_age_us == MINUTE

    def test_paper_listing_3_raw_count(self):
        scheme = parse_scheme("min max 5 max min max hugepage", ATTRS)
        # Raw count 5 of max 20 checks = 25%.
        assert scheme.pattern.min_freq == pytest.approx(0.25)

    def test_paper_listing_3_full(self):
        text = """
        # size  frequency  age  action
        min max 5 max min max hugepage
        2M max min min 7s max nohugepage

        4K max min min 5s max pageout
        """
        schemes = parse_schemes(text, ATTRS)
        assert [s.action for s in schemes] == [
            Action.HUGEPAGE,
            Action.NOHUGEPAGE,
            Action.PAGEOUT,
        ]
        assert schemes[2].pattern.min_size == 4096
        assert schemes[2].pattern.min_age_us == 5 * SEC

    def test_inline_comment(self):
        scheme = parse_scheme("min max min min 2m max pageout  # reclaim", ATTRS)
        assert scheme.action is Action.PAGEOUT

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ParseError):
            parse_scheme("min max min min 2m pageout", ATTRS)

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_schemes("min max min min 2m max pageout\nbogus line here", ATTRS)

    def test_bad_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_scheme("tiny max min min 2m max pageout", ATTRS)

    def test_roundtrip_listing3(self):
        for line in (
            "min max 5 max min max hugepage",
            "2M max min min 7s max nohugepage",
            "4K max min min 5s max pageout",
        ):
            scheme = parse_scheme(line, ATTRS)
            again = parse_scheme(format_scheme(scheme, ATTRS), ATTRS)
            assert again.pattern == scheme.pattern
            assert again.action == scheme.action

    @settings(max_examples=60, deadline=None)
    @given(
        min_sz=st.sampled_from(["min", "4K", "2M", "1G"]),
        min_fr=st.sampled_from(["min", "25%", "80%", "max"]),
        min_age=st.sampled_from(["min", "5s", "2m", "500ms"]),
        action=st.sampled_from(["pageout", "hugepage", "nohugepage", "cold", "willneed", "stat"]),
    )
    def test_roundtrip_property(self, min_sz, min_fr, min_age, action):
        line = f"{min_sz} max {min_fr} max {min_age} max {action}"
        scheme = parse_scheme(line, ATTRS)
        again = parse_scheme(format_scheme(scheme, ATTRS), ATTRS)
        assert again.pattern == scheme.pattern
        assert again.action == scheme.action


class TestActions:
    EPOCH = 100 * MSEC

    def test_pageout(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=self.EPOCH)
        applied = apply_action(kernel, Action.PAGEOUT, BASE, BASE + MIB, now=1)
        assert applied == MIB
        assert kernel.rss_bytes() == 0

    def test_willneed(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=self.EPOCH)
        kernel.pageout(BASE, BASE + MIB, now=1)
        applied = apply_action(kernel, Action.WILLNEED, BASE, BASE + MIB, now=2)
        assert applied == MIB
        assert kernel.rss_bytes() == MIB

    def test_cold(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=self.EPOCH)
        applied = apply_action(kernel, Action.COLD, BASE, BASE + MIB, now=1)
        assert applied == MIB

    def test_hugepage_and_nohugepage(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + 2 * MIB, now=0, epoch_us=self.EPOCH)
        applied = apply_action(kernel, Action.HUGEPAGE, BASE, BASE + 2 * MIB, now=1)
        assert applied == 2 * MIB
        applied = apply_action(kernel, Action.NOHUGEPAGE, BASE, BASE + 2 * MIB, now=2)
        assert applied == 2 * MIB

    def test_stat_touches_nothing(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=self.EPOCH)
        rss = kernel.rss_bytes()
        applied = apply_action(kernel, Action.STAT, BASE, BASE + MIB, now=1)
        assert applied == MIB
        assert kernel.rss_bytes() == rss

    def test_empty_range_rejected(self, kernel):
        with pytest.raises(SchemeError):
            apply_action(kernel, Action.PAGEOUT, BASE, BASE, now=1)

    def test_lru_prio_sets_protected_class(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=self.EPOCH)
        applied = apply_action(kernel, Action.LRU_PRIO, BASE, BASE + MIB, now=1)
        assert applied == MIB
        pt = kernel.space.vmas[0].pages
        assert (pt.lru_gen[: MIB // 4096] == 1).all()

    def test_lru_deprio_sets_evict_first_class(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=self.EPOCH)
        apply_action(kernel, Action.LRU_DEPRIO, BASE, BASE + MIB, now=1)
        pt = kernel.space.vmas[0].pages
        assert (pt.lru_gen[: MIB // 4096] == -1).all()

    def test_phys_pageout_via_rmap(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=self.EPOCH)
        # Frames 0..255 hold the touched pages; page them out physically.
        applied = apply_action(kernel, Action.PAGEOUT, 0, MIB, now=1, phys=True)
        assert applied == MIB
        assert kernel.rss_bytes() == 0
        assert kernel.swap.used_pages == MIB // 4096

    def test_phys_rejects_thp_actions(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        with pytest.raises(SchemeError):
            apply_action(kernel, Action.HUGEPAGE, 0, MIB, now=1, phys=True)
        with pytest.raises(SchemeError):
            apply_action(kernel, Action.WILLNEED, 0, MIB, now=1, phys=True)

    def test_phys_stat_counts_range(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        assert apply_action(kernel, Action.STAT, 0, MIB, now=1, phys=True) == MIB

    def test_phys_lru_actions(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=self.EPOCH)
        assert apply_action(kernel, Action.LRU_PRIO, 0, MIB, now=1, phys=True) == MIB
        pt = kernel.space.vmas[0].pages
        assert (pt.lru_gen[: MIB // 4096] == 1).all()
        apply_action(kernel, Action.LRU_DEPRIO, 0, MIB, now=2, phys=True)
        assert (pt.lru_gen[: MIB // 4096] == -1).all()


class TestSchemeHelpers:
    def test_with_pattern(self):
        scheme = Scheme(pattern=AccessPattern(min_age_us=5 * SEC), action=Action.PAGEOUT)
        tuned = scheme.with_pattern(min_age_us=10 * SEC)
        assert tuned.pattern.min_age_us == 10 * SEC
        assert scheme.pattern.min_age_us == 5 * SEC  # original untouched
        assert tuned.action is Action.PAGEOUT

    def test_describe_contains_action(self):
        scheme = parse_scheme("4K max min min 5s max pageout", ATTRS)
        assert "pageout" in scheme.describe()
