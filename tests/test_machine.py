"""Machine catalog — paper Table 2 — and the slow-tier catalog."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.sim.machine import (
    GuestSpec,
    MachineSpec,
    TierSpec,
    get_instance,
    get_tier,
    guest_of,
    instance_catalog,
    scaled_instance,
    scaled_tier,
    tier_catalog,
)
from repro.sim.pagetable import PAGE_SIZE
from repro.units import GIB


class TestTable2:
    """The catalog must match the paper's Table 2 verbatim."""

    def test_i3_metal(self):
        spec = get_instance("i3.metal")
        assert spec.cpu_ghz == 3.0
        assert spec.vcpus == 36
        assert spec.dram_bytes == 128 * GIB

    def test_m5d_metal(self):
        spec = get_instance("m5d.metal")
        assert spec.cpu_ghz == 3.1
        assert spec.vcpus == 48
        assert spec.dram_bytes == 96 * GIB

    def test_z1d_metal(self):
        spec = get_instance("z1d.metal")
        assert spec.cpu_ghz == 4.0
        assert spec.vcpus == 24
        assert spec.dram_bytes == 96 * GIB

    def test_catalog_has_exactly_three(self):
        assert sorted(instance_catalog()) == ["i3.metal", "m5d.metal", "z1d.metal"]

    def test_catalog_copy_is_safe(self):
        catalog = instance_catalog()
        catalog["fake"] = None
        assert "fake" not in instance_catalog()

    def test_unknown_instance_rejected(self):
        with pytest.raises(ConfigError):
            get_instance("c5.metal")


class TestGuest:
    """§4: the guest uses half the CPUs and a quarter of the memory."""

    @pytest.mark.parametrize("name", ["i3.metal", "m5d.metal", "z1d.metal"])
    def test_guest_shares(self, name):
        host = get_instance(name)
        guest = guest_of(host)
        assert guest.vcpus == host.vcpus // 2
        assert guest.dram_bytes == host.dram_bytes // 4

    def test_guest_name(self):
        assert guest_of(get_instance("i3.metal")).name == "i3.metal.guest"

    def test_guest_cpu_scale_matches_host(self):
        host = get_instance("z1d.metal")
        assert guest_of(host).cpu_scale == host.cpu_scale


class TestSpecs:
    def test_cpu_scale_reference(self):
        assert get_instance("i3.metal").cpu_scale == pytest.approx(1.0)
        assert get_instance("z1d.metal").cpu_scale == pytest.approx(4.0 / 3.0)

    def test_invalid_cpu_rejected(self):
        with pytest.raises(ConfigError):
            MachineSpec(name="bad", cpu_ghz=0, vcpus=4, dram_bytes=GIB)

    def test_invalid_vcpus_rejected(self):
        with pytest.raises(ConfigError):
            MachineSpec(name="bad", cpu_ghz=3.0, vcpus=0, dram_bytes=GIB)

    def test_invalid_dram_rejected(self):
        with pytest.raises(ConfigError):
            MachineSpec(name="bad", cpu_ghz=3.0, vcpus=4, dram_bytes=0)

    def test_scaled_instance(self):
        spec = scaled_instance("i3.metal", dram_scale=0.5)
        assert spec.dram_bytes == 64 * GIB
        assert spec.cpu_ghz == 3.0

    def test_scaled_instance_rejects_zero(self):
        with pytest.raises(ConfigError):
            scaled_instance("i3.metal", dram_scale=0)

    def test_invalid_guest_vcpus_rejected(self):
        with pytest.raises(ConfigError):
            GuestSpec(host=get_instance("i3.metal"), vcpus=0, dram_bytes=GIB)

    def test_invalid_guest_dram_rejected(self):
        with pytest.raises(ConfigError):
            GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=0)


class TestTierCatalog:
    """The slow-tier catalog: published NVM/CXL device numbers."""

    def test_optane_pmm(self):
        tier = get_tier("optane-pmm")
        assert tier.capacity_bytes == 512 * GIB
        assert tier.access_latency_ns == 305.0
        assert tier.write_us > tier.read_us  # Optane's write asymmetry

    def test_cxl_dram(self):
        tier = get_tier("cxl-dram")
        assert tier.capacity_bytes == 256 * GIB
        assert tier.access_latency_ns == 210.0

    def test_catalog_names(self):
        assert sorted(tier_catalog()) == ["cxl-dram", "optane-pmm"]

    def test_catalog_copy_is_safe(self):
        catalog = tier_catalog()
        catalog["fake"] = None
        assert "fake" not in tier_catalog()

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigError):
            get_tier("hbm")

    def test_n_frames(self):
        assert get_tier("cxl-dram").n_frames == 256 * GIB // PAGE_SIZE

    def test_sub_page_capacity_rejected(self):
        with pytest.raises(ConfigError):
            TierSpec(
                name="bad",
                capacity_bytes=PAGE_SIZE - 1,
                access_latency_ns=200.0,
                read_us=0.3,
                write_us=0.3,
            )

    @pytest.mark.parametrize(
        "field", ["access_latency_ns", "read_us", "write_us"]
    )
    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_latency_rejected(self, field, bad):
        kwargs = dict(
            name="bad",
            capacity_bytes=GIB,
            access_latency_ns=200.0,
            read_us=0.3,
            write_us=0.3,
        )
        kwargs[field] = bad
        with pytest.raises(ConfigError):
            TierSpec(**kwargs)

    def test_scaled_tier(self):
        tier = scaled_tier("cxl-dram", capacity_scale=0.5)
        assert tier.capacity_bytes == 128 * GIB
        assert tier.access_latency_ns == 210.0

    def test_scaled_tier_rejects_zero(self):
        with pytest.raises(ConfigError):
            scaled_tier("cxl-dram", capacity_scale=0)

    def test_guest_carries_tier(self):
        tier = get_tier("optane-pmm")
        guest = guest_of(get_instance("i3.metal"), slow_tier=tier)
        assert guest.slow_tier is tier
        assert guest_of(get_instance("i3.metal")).slow_tier is None


class TestPageAlignment:
    """Every spec factory floors byte sizes to whole 4 KiB pages."""

    @given(scale=st.floats(min_value=1e-9, max_value=1.0, allow_nan=False))
    def test_scaled_instance_page_aligned(self, scale):
        spec = scaled_instance("m5d.metal", dram_scale=scale)
        assert spec.dram_bytes % PAGE_SIZE == 0
        assert spec.dram_bytes >= PAGE_SIZE

    @given(scale=st.floats(min_value=1e-9, max_value=1.0, allow_nan=False))
    def test_scaled_tier_page_aligned(self, scale):
        tier = scaled_tier("optane-pmm", capacity_scale=scale)
        assert tier.capacity_bytes % PAGE_SIZE == 0
        assert tier.capacity_bytes >= PAGE_SIZE

    @given(
        name=st.sampled_from(["i3.metal", "m5d.metal", "z1d.metal"]),
        scale=st.floats(min_value=1e-9, max_value=1.0, allow_nan=False),
    )
    def test_guest_of_scaled_host_page_aligned(self, name, scale):
        guest = guest_of(scaled_instance(name, dram_scale=scale))
        assert guest.dram_bytes % PAGE_SIZE == 0
        assert guest.dram_bytes >= PAGE_SIZE
        assert guest.vcpus >= 1
