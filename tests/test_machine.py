"""Machine catalog — paper Table 2."""

import pytest

from repro.errors import ConfigError
from repro.sim.machine import (
    MachineSpec,
    get_instance,
    guest_of,
    instance_catalog,
    scaled_instance,
)
from repro.units import GIB


class TestTable2:
    """The catalog must match the paper's Table 2 verbatim."""

    def test_i3_metal(self):
        spec = get_instance("i3.metal")
        assert spec.cpu_ghz == 3.0
        assert spec.vcpus == 36
        assert spec.dram_bytes == 128 * GIB

    def test_m5d_metal(self):
        spec = get_instance("m5d.metal")
        assert spec.cpu_ghz == 3.1
        assert spec.vcpus == 48
        assert spec.dram_bytes == 96 * GIB

    def test_z1d_metal(self):
        spec = get_instance("z1d.metal")
        assert spec.cpu_ghz == 4.0
        assert spec.vcpus == 24
        assert spec.dram_bytes == 96 * GIB

    def test_catalog_has_exactly_three(self):
        assert sorted(instance_catalog()) == ["i3.metal", "m5d.metal", "z1d.metal"]

    def test_catalog_copy_is_safe(self):
        catalog = instance_catalog()
        catalog["fake"] = None
        assert "fake" not in instance_catalog()

    def test_unknown_instance_rejected(self):
        with pytest.raises(ConfigError):
            get_instance("c5.metal")


class TestGuest:
    """§4: the guest uses half the CPUs and a quarter of the memory."""

    @pytest.mark.parametrize("name", ["i3.metal", "m5d.metal", "z1d.metal"])
    def test_guest_shares(self, name):
        host = get_instance(name)
        guest = guest_of(host)
        assert guest.vcpus == host.vcpus // 2
        assert guest.dram_bytes == host.dram_bytes // 4

    def test_guest_name(self):
        assert guest_of(get_instance("i3.metal")).name == "i3.metal.guest"

    def test_guest_cpu_scale_matches_host(self):
        host = get_instance("z1d.metal")
        assert guest_of(host).cpu_scale == host.cpu_scale


class TestSpecs:
    def test_cpu_scale_reference(self):
        assert get_instance("i3.metal").cpu_scale == pytest.approx(1.0)
        assert get_instance("z1d.metal").cpu_scale == pytest.approx(4.0 / 3.0)

    def test_invalid_cpu_rejected(self):
        with pytest.raises(ConfigError):
            MachineSpec(name="bad", cpu_ghz=0, vcpus=4, dram_bytes=GIB)

    def test_invalid_vcpus_rejected(self):
        with pytest.raises(ConfigError):
            MachineSpec(name="bad", cpu_ghz=3.0, vcpus=0, dram_bytes=GIB)

    def test_invalid_dram_rejected(self):
        with pytest.raises(ConfigError):
            MachineSpec(name="bad", cpu_ghz=3.0, vcpus=4, dram_bytes=0)

    def test_scaled_instance(self):
        spec = scaled_instance("i3.metal", dram_scale=0.5)
        assert spec.dram_bytes == 64 * GIB
        assert spec.cpu_ghz == 3.0

    def test_scaled_instance_rejects_zero(self):
        with pytest.raises(ConfigError):
            scaled_instance("i3.metal", dram_scale=0)
