"""Write-awareness — the paper's stated future work, implemented.

"At the moment, DAOS does not treat memory reads and writes
differently ... We leave this feature for future versions of DAOS."
(§1 Limitations.)  These tests cover the whole added channel: dirty-bit
sampling in the monitor, write-frequency scheme bounds, and dirty-aware
writeback pricing on swap-out.
"""

import numpy as np
import pytest

from repro.monitor.attrs import MonitorAttrs
from repro.monitor.core import DataAccessMonitor
from repro.monitor.primitives import PhysicalPrimitive, VirtualPrimitive
from repro.schemes.actions import Action
from repro.schemes.engine import SchemesEngine
from repro.schemes.scheme import AccessPattern, Scheme
from repro.units import MIB, MSEC, SEC

from tests.helpers import BASE, run_epochs

WATTRS = MonitorAttrs(
    sampling_interval_us=1 * MSEC,
    aggregation_interval_us=20 * MSEC,
    regions_update_interval_us=200 * MSEC,
    min_nr_regions=10,
    max_nr_regions=200,
    track_writes=True,
)


def run_read_write_split(kernel, queue, monitor, n_epochs=25):
    """First 8 MiB read-hot, next 8 MiB write-hot, rest untouched."""
    monitor.start(queue)
    snaps = []
    monitor.register_callback(lambda s: snaps.append(s))
    run_epochs(
        kernel,
        queue,
        [
            dict(start=BASE, end=BASE + 8 * MIB, touches_per_page=2000),
            dict(
                start=BASE + 8 * MIB,
                end=BASE + 16 * MIB,
                touches_per_page=2000,
                write_fraction=1.0,
            ),
        ],
        n_epochs=n_epochs,
    )
    return snaps


class TestMonitorWriteTracking:
    def test_write_hot_regions_show_writes(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        monitor = DataAccessMonitor(VirtualPrimitive(kernel), WATTRS, seed=3)
        snaps = run_read_write_split(kernel, queue, monitor)
        last = snaps[-1]
        write_hot = sum(
            r.size
            for r in last.regions
            if r.write_frequency(last.max_nr_accesses) > 0.5
        )
        assert 4 * MIB < write_hot < 16 * MIB

    def test_read_hot_regions_show_no_writes(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        monitor = DataAccessMonitor(VirtualPrimitive(kernel), WATTRS, seed=3)
        snaps = run_read_write_split(kernel, queue, monitor)
        last = snaps[-1]
        for region in last.regions:
            if region.start < BASE + 7 * MIB and region.end <= BASE + 8 * MIB:
                assert region.nr_writes <= 2  # read-hot: essentially clean

    def test_tracking_off_reports_zero_writes(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        monitor = DataAccessMonitor(VirtualPrimitive(kernel), fast_attrs, seed=3)
        snaps = run_read_write_split(kernel, queue, monitor)
        assert all(r.nr_writes == 0 for s in snaps for r in s.regions)

    def test_paddr_primitive_tracks_writes_too(self, kernel, queue):
        kernel.mmap(BASE, 64 * MIB)
        monitor = DataAccessMonitor(PhysicalPrimitive(kernel), WATTRS, seed=3)
        snaps = run_read_write_split(kernel, queue, monitor)
        last = snaps[-1]
        # Merging only considers nr_accesses (as upstream), so the
        # read-hot and write-hot halves may fold into one region whose
        # write count is the size-weighted blend — about half the
        # access count here.
        assert any(r.nr_writes >= 8 for r in last.regions)


class TestWriteAwareSchemes:
    def test_wfreq_bounds_validated(self):
        with pytest.raises(Exception):
            AccessPattern(min_wfreq=0.9, max_wfreq=0.2)

    def test_clean_only_pattern(self):
        from repro.monitor.region import Region

        attrs = WATTRS
        pattern = AccessPattern(max_wfreq=0.0)
        clean = Region(0, 8 * MIB)
        clean.nr_accesses = 10
        dirty = Region(8 * MIB, 16 * MIB)
        dirty.nr_accesses = 10
        dirty.nr_writes = 10
        assert pattern.matches(clean, attrs)
        assert not pattern.matches(dirty, attrs)

    def test_write_heavy_pattern(self):
        from repro.monitor.region import Region

        attrs = WATTRS
        pattern = AccessPattern(min_wfreq=0.5)
        dirty = Region(0, MIB)
        dirty.nr_accesses = 15
        dirty.nr_writes = 15
        assert pattern.matches(dirty, attrs)
        clean = Region(MIB, 2 * MIB)
        clean.nr_accesses = 15
        assert not pattern.matches(clean, attrs)

    def test_engine_targets_clean_memory_only(self, kernel, queue):
        """A clean-only PAGEOUT scheme must reclaim the read-cold part
        and leave write-active memory alone."""
        kernel.mmap(BASE, 64 * MIB)
        monitor = DataAccessMonitor(VirtualPrimitive(kernel), WATTRS, seed=3)
        scheme = Scheme(
            pattern=AccessPattern(max_freq=0.0, max_wfreq=0.0, min_age_us=100 * MSEC),
            action=Action.PAGEOUT,
        )
        engine = SchemesEngine(kernel, [scheme])
        monitor.attach_engine(engine)
        monitor.start(queue)
        # Populate everything once (clean); keep 8-16 MiB write-hot.
        kernel.apply_access(BASE, BASE + 64 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(
            kernel,
            queue,
            [
                dict(
                    start=BASE + 8 * MIB,
                    end=BASE + 16 * MIB,
                    touches_per_page=2000,
                    write_fraction=1.0,
                )
            ],
            n_epochs=30,
        )
        pt = kernel.space.vmas[0].pages
        write_hot_pages = slice(8 * MIB // 4096, 16 * MIB // 4096)
        assert pt.present[write_hot_pages].all()  # never paged out
        assert scheme.stats.sz_applied > 16 * MIB  # cold clean memory went


class TestDirtyAwareWriteback:
    def test_clean_pageout_costs_no_writeback(self, kernel):
        kernel.mmap(BASE, 16 * MIB)
        kernel.apply_access(BASE, BASE + 8 * MIB, now=0, epoch_us=100 * MSEC)
        kernel.pageout(BASE, BASE + 8 * MIB, now=1)
        assert kernel.metrics.pages_written_back == 0

    def test_dirty_pageout_pays_writeback(self, kernel):
        kernel.mmap(BASE, 16 * MIB)
        kernel.apply_access(
            BASE, BASE + 8 * MIB, now=0, epoch_us=100 * MSEC, write_fraction=1.0
        )
        kernel.pageout(BASE, BASE + 8 * MIB, now=1)
        assert kernel.metrics.pages_written_back == 8 * MIB // 4096

    def test_second_pageout_of_unwritten_pages_is_free(self, kernel):
        kernel.mmap(BASE, 16 * MIB)
        kernel.apply_access(
            BASE, BASE + 4 * MIB, now=0, epoch_us=100 * MSEC, write_fraction=1.0
        )
        kernel.pageout(BASE, BASE + 4 * MIB, now=1)
        first = kernel.metrics.pages_written_back
        # Fault back in READ-only, page out again: content unchanged.
        kernel.apply_access(BASE, BASE + 4 * MIB, now=2, epoch_us=100 * MSEC)
        kernel.pageout(BASE, BASE + 4 * MIB, now=3)
        assert kernel.metrics.pages_written_back == first

    def test_rewritten_pages_pay_again(self, kernel):
        kernel.mmap(BASE, 16 * MIB)
        kernel.apply_access(
            BASE, BASE + 4 * MIB, now=0, epoch_us=100 * MSEC, write_fraction=1.0
        )
        kernel.pageout(BASE, BASE + 4 * MIB, now=1)
        first = kernel.metrics.pages_written_back
        kernel.apply_access(
            BASE, BASE + 4 * MIB, now=2, epoch_us=100 * MSEC, write_fraction=1.0
        )
        kernel.pageout(BASE, BASE + 4 * MIB, now=3)
        assert kernel.metrics.pages_written_back == 2 * first
