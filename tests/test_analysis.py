"""Analysis: heatmaps, WSS, ASCII plotting, report tables."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import ascii_series, ascii_table
from repro.analysis.heatmap import build_heatmap, render_heatmap
from repro.analysis.report import fig7_table, format_normalized_rows, short_label
from repro.analysis.wss import wss_from_snapshots
from repro.errors import ConfigError
from repro.monitor.snapshot import RegionSnapshot, Snapshot
from repro.runner.results import NormalizedResult
from repro.units import MIB, SEC

BASE = 0x7F00_0000_0000


def snap(time_us, regions, max_nr=20):
    return Snapshot(
        time_us=time_us,
        regions=tuple(RegionSnapshot(*r) for r in regions),
        max_nr_accesses=max_nr,
    )


def hot_cold_snapshots(n=10):
    """Hot low half, cold high half, over n aggregation instants."""
    out = []
    for i in range(n):
        out.append(
            snap(
                i * SEC,
                [
                    (BASE, BASE + 32 * MIB, 18, i),
                    (BASE + 32 * MIB, BASE + 64 * MIB, 0, i),
                ],
            )
        )
    return out


class TestSnapshotType:
    def test_frequency(self):
        region = RegionSnapshot(0, 4096, 10, 0)
        assert region.frequency(20) == 0.5
        assert region.frequency(0) == 0.0

    def test_hot_bytes(self):
        s = hot_cold_snapshots(1)[0]
        assert s.hot_bytes(0.5) == 32 * MIB
        assert s.hot_bytes(0.0) == 64 * MIB

    def test_total_size(self):
        s = hot_cold_snapshots(1)[0]
        assert s.total_size() == 64 * MIB

    def test_matching(self):
        s = hot_cold_snapshots(1)[0]
        assert len(s.matching(lambda r: r.nr_accesses > 0)) == 1


class TestHeatmap:
    def test_hot_region_dominates_grid(self):
        heatmap = build_heatmap(hot_cold_snapshots(), time_bins=10, addr_bins=10)
        # Low-address half (rows 0-4) hot, high half cold.
        assert heatmap.grid[:, :5].mean() > 10 * heatmap.grid[:, 5:].mean() + 1e-12

    def test_grid_values_are_frequencies(self):
        heatmap = build_heatmap(hot_cold_snapshots(), time_bins=5, addr_bins=4)
        assert heatmap.grid.min() >= 0.0
        assert heatmap.grid.max() <= 1.0

    def test_addr_range_override(self):
        heatmap = build_heatmap(
            hot_cold_snapshots(), addr_range=(BASE, BASE + 32 * MIB), addr_bins=4
        )
        assert heatmap.addr_lo == BASE
        assert heatmap.addr_hi == BASE + 32 * MIB

    def test_active_span_skips_layout_gaps(self):
        # Data span plus a far-away stack span; the data span is hotter.
        snaps = []
        for i in range(5):
            snaps.append(
                snap(
                    i * SEC,
                    [
                        (BASE, BASE + 64 * MIB, 15, 0),
                        (BASE + 1 << 40, (BASE + 1 << 40) + MIB, 20, 0),
                    ],
                )
            )
        heatmap = build_heatmap(snaps)
        assert heatmap.addr_lo == BASE
        assert heatmap.addr_hi == BASE + 64 * MIB

    def test_empty_snapshots_rejected(self):
        with pytest.raises(ConfigError):
            build_heatmap([])

    def test_render_contains_ramp(self):
        heatmap = build_heatmap(hot_cold_snapshots(), time_bins=20, addr_bins=10)
        text = render_heatmap(heatmap, title="demo")
        assert "demo" in text
        assert "@" in text  # the hottest ramp step appears
        assert text.count("|") >= 20

    def test_hottest_bucket(self):
        heatmap = build_heatmap(hot_cold_snapshots(), time_bins=4, addr_bins=4)
        _, y = heatmap.hottest_bucket()
        assert y < 2  # in the hot (low-address) half


class TestWss:
    def test_constant_wss(self):
        stats = wss_from_snapshots(hot_cold_snapshots(), min_frequency=0.5)
        assert stats["p50"] == 32 * MIB
        assert stats["mean"] == 32 * MIB

    def test_threshold_changes_estimate(self):
        loose = wss_from_snapshots(hot_cold_snapshots(), min_frequency=0.0)
        tight = wss_from_snapshots(hot_cold_snapshots(), min_frequency=0.9)
        assert loose["mean"] > tight["mean"]

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            wss_from_snapshots([])

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigError):
            wss_from_snapshots(hot_cold_snapshots(), min_frequency=2.0)


class TestAsciiPlots:
    def test_series_renders(self):
        text = ascii_series([0, 1, 2, 3], [0, 1, 4, 9], title="squares")
        assert "squares" in text
        assert "*" in text

    def test_series_with_overlay(self):
        text = ascii_series([0, 1, 2], [0, 1, 2], overlay=([0, 1, 2], [2, 1, 0], "."))
        assert "*" in text and "." in text

    def test_series_validation(self):
        with pytest.raises(ConfigError):
            ascii_series([1], [1, 2])
        with pytest.raises(ConfigError):
            ascii_series([], [])

    def test_table_renders(self):
        text = ascii_table(["a", "b"], [["x", 1.5], ["y", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.500" in text

    def test_table_validation(self):
        with pytest.raises(ConfigError):
            ascii_table([], [])
        with pytest.raises(ConfigError):
            ascii_table(["a"], [["x", "y"]])


class TestReport:
    def _rows(self, config):
        return [
            NormalizedResult("parsec3/freqmine", config, "i3.metal", 0.99, 5.0, 0.8, 0.01, 0.5),
            NormalizedResult("splash2x/fft", config, "i3.metal", 1.0, 1.0, 0.0, 0.0, 1.0),
        ]

    def test_short_label(self):
        assert short_label("parsec3/freqmine") == "P/freqmine"
        assert short_label("splash2x/fft") == "S/fft"
        assert short_label("average") == "average"

    def test_format_rows(self):
        text = format_normalized_rows(self._rows("prcl"))
        assert "P/freqmine" in text
        assert "prcl" in text

    def test_format_empty_rejected(self):
        with pytest.raises(ConfigError):
            format_normalized_rows([])

    def test_fig7_table_has_average(self):
        table = fig7_table({"rec": self._rows("rec"), "prcl": self._rows("prcl")}, "i3.metal")
        assert "average" in table
        assert "rec:perf" in table
        assert "prcl:memeff" in table

    def test_fig7_mismatched_workloads_rejected(self):
        bad = {"rec": self._rows("rec"), "prcl": self._rows("prcl")[:1]}
        with pytest.raises(ConfigError):
            fig7_table(bad, "i3.metal")
