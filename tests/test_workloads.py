"""Workload catalog and pattern components."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim.pagetable import PAGE_SIZE
from repro.workloads.base import Burst, Workload, WorkloadSpec
from repro.workloads.parsec import PARSEC3
from repro.workloads.patterns import (
    ColdInit,
    CyclicSweep,
    Hotspot,
    LinearStream,
    PhasedHotspot,
    RandomAccess,
)
from repro.workloads.registry import (
    all_workloads,
    get_workload,
    parsec_names,
    splash_names,
)
from repro.workloads.serverless import serverless_spec
from repro.workloads.splash import SPLASH2X
from repro.units import MIB, MSEC, SEC

EPOCH = 100 * MSEC
RNG = np.random.default_rng(0)


class TestRegistry:
    def test_24_benchmark_workloads(self):
        assert len(all_workloads()) == 24
        assert len(PARSEC3) == 12
        assert len(SPLASH2X) == 12

    def test_paper_workload_names_present(self):
        # The names Figure 7 lists.
        expected_parsec = {
            "blackscholes", "bodytrack", "canneal", "dedup", "facesim",
            "fluidanimate", "freqmine", "raytrace", "streamcluster",
            "swaptions", "vips", "x264",
        }
        expected_splash = {
            "barnes", "fft", "lu_cb", "lu_ncb", "ocean_cp", "ocean_ncp",
            "radiosity", "radix", "raytrace", "volrend", "water_nsquared",
            "water_spatial",
        }
        assert set(PARSEC3) == expected_parsec
        assert set(SPLASH2X) == expected_splash

    def test_lookup_by_full_name(self):
        assert get_workload("parsec3/freqmine").name == "freqmine"
        assert get_workload("splash2x/ocean_ncp").suite == "splash2x"

    def test_lookup_by_figure_prefix(self):
        assert get_workload("P/freqmine").name == "freqmine"
        assert get_workload("S/fft").name == "fft"

    def test_production_workload(self):
        assert get_workload("production/serverless").suite == "production"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_workload("parsec3/doom")
        with pytest.raises(ConfigError):
            get_workload("freqmine")  # needs suite/name

    def test_name_lists(self):
        assert len(parsec_names()) == 12
        assert all(n.startswith("parsec3/") for n in parsec_names())
        assert len(splash_names()) == 12


class TestSpecValidation:
    def test_all_specs_valid(self):
        for spec in all_workloads():
            assert spec.footprint >= PAGE_SIZE
            assert spec.duration_us >= spec.epoch_us
            for comp in spec.components:
                assert comp.offset + comp.size <= spec.footprint

    def test_component_overflow_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(
                name="bad",
                suite="test",
                footprint=MIB,
                duration_us=SEC,
                components=(Hotspot(offset=0, size=2 * MIB),),
            )

    def test_scaled_changes_duration_only(self):
        spec = get_workload("parsec3/freqmine")
        scaled = spec.scaled(0.5)
        assert scaled.duration_us == spec.duration_us // 2
        assert scaled.footprint == spec.footprint
        assert scaled.components == spec.components

    def test_scaled_rejects_zero(self):
        with pytest.raises(ConfigError):
            get_workload("parsec3/freqmine").scaled(0)

    def test_serverless_cold_share(self):
        spec = serverless_spec(footprint_mib=100, cold_share=0.9)
        cold = spec.components[0]
        assert isinstance(cold, ColdInit)
        assert cold.size >= 0.85 * spec.footprint


class TestBurst:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Burst(10, 10)
        with pytest.raises(ConfigError):
            Burst(0, 10, fraction=0.0)
        with pytest.raises(ConfigError):
            Burst(0, 10, weight=-1.0)


class TestHotspot:
    def test_emits_full_range_every_epoch(self):
        comp = Hotspot(offset=0, size=8 * MIB, touches_per_sec=1000)
        for t in (0, 5 * SEC, 100 * SEC):
            (burst,) = comp.bursts(t, EPOCH, RNG)
            assert (burst.start, burst.end) == (0, 8 * MIB)
            assert burst.touches_per_page == pytest.approx(100.0)

    def test_pages_per_epoch(self):
        comp = Hotspot(offset=0, size=8 * MIB)
        assert comp.pages_per_epoch(EPOCH) == 8 * MIB / PAGE_SIZE

    def test_sparse_stride(self):
        comp = Hotspot(offset=0, size=8 * MIB, stride=4)
        (burst,) = comp.bursts(0, EPOCH, RNG)
        assert burst.stride == 4
        assert comp.pages_per_epoch(EPOCH) == 8 * MIB / PAGE_SIZE / 4


class TestCyclicSweep:
    def test_window_advances_within_period(self):
        comp = CyclicSweep(offset=0, size=100 * MIB, period_us=10 * SEC)
        (b0,) = comp.bursts(0, EPOCH, RNG)
        (b1,) = comp.bursts(5 * SEC, EPOCH, RNG)
        assert b0.start == 0
        assert b1.start == pytest.approx(50 * MIB, abs=PAGE_SIZE)

    def test_full_coverage_over_one_period(self):
        comp = CyclicSweep(offset=0, size=100 * MIB, period_us=10 * SEC)
        covered = np.zeros(100 * MIB // PAGE_SIZE, dtype=bool)
        for t in range(0, 10 * SEC, EPOCH):
            for burst in comp.bursts(t, EPOCH, RNG):
                covered[burst.start // PAGE_SIZE : burst.end // PAGE_SIZE] = True
        assert covered.all()

    def test_idle_outside_active_share(self):
        comp = CyclicSweep(
            offset=0, size=100 * MIB, period_us=10 * SEC, active_share=0.3
        )
        assert comp.bursts(5 * SEC, EPOCH, RNG) == []
        assert comp.bursts(0, EPOCH, RNG) != []

    def test_pattern_repeats_across_periods(self):
        comp = CyclicSweep(offset=0, size=100 * MIB, period_us=10 * SEC)
        (b0,) = comp.bursts(1 * SEC, EPOCH, RNG)
        (b1,) = comp.bursts(11 * SEC, EPOCH, RNG)
        assert (b0.start, b0.end) == (b1.start, b1.end)

    def test_stall_boost_propagates(self):
        comp = CyclicSweep(
            offset=0, size=100 * MIB, period_us=10 * SEC, stall_boost=5.0
        )
        (burst,) = comp.bursts(0, EPOCH, RNG)
        assert burst.weight == 5.0
        plain = CyclicSweep(offset=0, size=100 * MIB, period_us=10 * SEC)
        assert comp.pages_per_epoch(EPOCH) == 5 * plain.pages_per_epoch(EPOCH)


class TestLinearStream:
    def test_single_pass_then_idle(self):
        comp = LinearStream(offset=0, size=100 * MIB, span_us=10 * SEC)
        assert comp.bursts(5 * SEC, EPOCH, RNG) != []
        assert comp.bursts(11 * SEC, EPOCH, RNG) == []

    def test_warm_tail_trails_front(self):
        comp = LinearStream(
            offset=0, size=100 * MIB, span_us=10 * SEC, warm_tail_bytes=10 * MIB
        )
        bursts = comp.bursts(5 * SEC, EPOCH, RNG)
        assert len(bursts) == 2
        front, tail = bursts
        assert tail.end == front.start
        assert front.start - tail.start <= 10 * MIB

    def test_front_covers_whole_range(self):
        comp = LinearStream(offset=0, size=100 * MIB, span_us=10 * SEC)
        covered = np.zeros(100 * MIB // PAGE_SIZE, dtype=bool)
        for t in range(0, 10 * SEC, EPOCH):
            for burst in comp.bursts(t, EPOCH, RNG):
                covered[burst.start // PAGE_SIZE : burst.end // PAGE_SIZE] = True
        assert covered.all()


class TestPhasedHotspot:
    def test_window_jumps_every_dwell(self):
        comp = PhasedHotspot(
            offset=0, size=100 * MIB, hot_bytes=10 * MIB, dwell_us=5 * SEC, n_positions=4
        )
        (b0,) = comp.bursts(0, EPOCH, RNG)
        (b1,) = comp.bursts(5 * SEC + EPOCH, EPOCH, RNG)
        assert b0.start != b1.start

    def test_positions_cycle(self):
        comp = PhasedHotspot(
            offset=0, size=100 * MIB, hot_bytes=10 * MIB, dwell_us=5 * SEC, n_positions=4
        )
        (b0,) = comp.bursts(0, EPOCH, RNG)
        (b_again,) = comp.bursts(20 * SEC, EPOCH, RNG)
        assert (b0.start, b0.end) == (b_again.start, b_again.end)

    def test_window_within_component(self):
        comp = PhasedHotspot(
            offset=0, size=100 * MIB, hot_bytes=10 * MIB, dwell_us=SEC, n_positions=7
        )
        for t in range(0, 10 * SEC, SEC):
            (burst,) = comp.bursts(t, EPOCH, RNG)
            assert 0 <= burst.start < burst.end <= 100 * MIB

    def test_hot_bytes_must_fit(self):
        with pytest.raises(ConfigError):
            PhasedHotspot(offset=0, size=MIB, hot_bytes=2 * MIB)


class TestColdInit:
    def test_touched_only_during_init(self):
        comp = ColdInit(offset=0, size=100 * MIB, init_us=2 * SEC)
        assert comp.bursts(1 * SEC, EPOCH, RNG) != []
        assert comp.bursts(3 * SEC, EPOCH, RNG) == []

    def test_init_covers_everything(self):
        comp = ColdInit(offset=0, size=100 * MIB, init_us=2 * SEC)
        covered = np.zeros(100 * MIB // PAGE_SIZE, dtype=bool)
        for t in range(0, 2 * SEC, EPOCH):
            for burst in comp.bursts(t, EPOCH, RNG):
                covered[burst.start // PAGE_SIZE : burst.end // PAGE_SIZE] = True
        assert covered.all()

    def test_steady_state_pages_is_zero(self):
        comp = ColdInit(offset=0, size=100 * MIB)
        assert comp.pages_per_epoch(EPOCH) == 0.0


class TestRandomAccess:
    def test_fraction_scales_with_rate(self):
        comp = RandomAccess(offset=0, size=100 * MIB, pages_per_sec=25600)
        (burst,) = comp.bursts(0, EPOCH, RNG)
        assert burst.fraction == pytest.approx(0.1)  # 2560 of 25600 pages

    def test_pages_per_epoch_capped(self):
        comp = RandomAccess(offset=0, size=MIB, pages_per_sec=10**9)
        assert comp.pages_per_epoch(EPOCH) == MIB / PAGE_SIZE


class TestCatalogSmoke:
    """Every catalog workload must run end to end under every config
    (at a tiny time scale)."""

    @pytest.mark.parametrize(
        "name", [spec.full_name for spec in all_workloads()]
    )
    def test_baseline_runs(self, name):
        from repro.runner import run_experiment

        result = run_experiment(name, config="baseline", time_scale=0.02, seed=0)
        assert result.runtime_us > 0
        assert result.avg_rss_bytes > 0

    def test_monitored_run_on_one_per_suite(self):
        from repro.runner import run_experiment

        for name in ("parsec3/swaptions", "splash2x/volrend"):
            result = run_experiment(name, config="prcl", time_scale=0.1, seed=0)
            assert result.monitor_checks > 0


class TestWorkloadDriver:
    def test_setup_creates_three_vmas(self, kernel):
        spec = serverless_spec(footprint_mib=64, duration_s=10)
        work = Workload(spec, kernel, seed=1)
        work.setup()
        names = [v.name for v in kernel.space.vmas]
        assert names == ["heap", "data", "stack"]

    def test_run_epoch_touches_memory(self, kernel):
        spec = serverless_spec(footprint_mib=64, duration_s=10)
        work = Workload(spec, kernel, seed=1)
        work.setup()
        work.run_epoch(0)
        assert kernel.rss_bytes() > 0
        assert work.epochs_run == 1

    def test_run_epoch_requires_setup(self, kernel):
        spec = serverless_spec(footprint_mib=64, duration_s=10)
        work = Workload(spec, kernel, seed=1)
        with pytest.raises(ConfigError):
            work.run_epoch(0)

    def test_stall_weight_realises_mem_share(self, kernel):
        """After calibration, steady-state memory stall sits near the
        spec's mem_share of epoch time."""
        spec = WorkloadSpec(
            name="cal",
            suite="test",
            footprint=64 * MIB,
            duration_us=10 * SEC,
            components=(Hotspot(offset=0, size=32 * MIB, touches_per_sec=1000),),
            compute_share=0.6,
            mem_share=0.4,
        )
        work = Workload(spec, kernel, seed=1)
        work.setup()
        work.run_epoch(0)  # warm-up (minor faults)
        stall_before = kernel.metrics.runtime.memory_stall_us
        work.run_epoch(spec.epoch_us)
        stall = kernel.metrics.runtime.memory_stall_us - stall_before
        compute = spec.epoch_us * spec.compute_share
        share = stall / (stall + compute)
        assert share == pytest.approx(0.4, abs=0.05)

    def test_n_epochs(self):
        spec = serverless_spec(footprint_mib=64, duration_s=10)
        assert spec.duration_us // spec.epoch_us == 100
