"""Address-range scheme filters (upstream DAMOS-filter extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemeError
from repro.monitor.attrs import MonitorAttrs
from repro.monitor.core import DataAccessMonitor
from repro.monitor.primitives import VirtualPrimitive
from repro.schemes.engine import SchemesEngine
from repro.schemes.filters import AddressFilter, apply_filters
from repro.schemes.parser import parse_scheme
from repro.units import MIB, MSEC

from tests.helpers import BASE, run_epochs

K = 4096


class TestApplyFilters:
    def test_no_filters_passes_everything(self):
        assert apply_filters(0, 100 * K, []) == [(0, 100 * K)]

    def test_allow_filter_intersects(self):
        f = AddressFilter(20 * K, 40 * K, allow=True)
        assert apply_filters(0, 100 * K, [f]) == [(20 * K, 40 * K)]

    def test_allow_outside_range_passes_nothing(self):
        f = AddressFilter(200 * K, 300 * K, allow=True)
        assert apply_filters(0, 100 * K, [f]) == []

    def test_multiple_allows_are_unioned(self):
        filters = [
            AddressFilter(10 * K, 20 * K),
            AddressFilter(15 * K, 30 * K),
            AddressFilter(50 * K, 60 * K),
        ]
        assert apply_filters(0, 100 * K, filters) == [
            (10 * K, 30 * K),
            (50 * K, 60 * K),
        ]

    def test_reject_filter_carves_hole(self):
        f = AddressFilter(20 * K, 40 * K, allow=False)
        assert apply_filters(0, 100 * K, [f]) == [(0, 20 * K), (40 * K, 100 * K)]

    def test_reject_covering_everything(self):
        f = AddressFilter(0, 100 * K, allow=False)
        assert apply_filters(0, 100 * K, [f]) == []

    def test_allow_then_reject(self):
        filters = [
            AddressFilter(0, 50 * K, allow=True),
            AddressFilter(10 * K, 20 * K, allow=False),
        ]
        assert apply_filters(0, 100 * K, filters) == [
            (0, 10 * K),
            (20 * K, 50 * K),
        ]

    def test_empty_filter_rejected(self):
        with pytest.raises(SchemeError):
            AddressFilter(10, 10)

    def test_empty_range_rejected(self):
        with pytest.raises(SchemeError):
            apply_filters(10, 10, [])

    @settings(max_examples=60, deadline=None)
    @given(
        ranges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=90),
                st.integers(min_value=1, max_value=30),
                st.booleans(),
            ),
            max_size=6,
        )
    )
    def test_output_always_sorted_disjoint_and_inside(self, ranges):
        filters = [
            AddressFilter(lo * K, (lo + span) * K, allow=allow)
            for lo, span, allow in ranges
        ]
        out = apply_filters(0, 100 * K, filters)
        prev = 0
        for lo, hi in out:
            assert 0 <= lo < hi <= 100 * K
            assert lo >= prev
            prev = hi
        # Rejected ranges never appear in the output.
        for f in filters:
            if not f.allow:
                for lo, hi in out:
                    assert hi <= f.start or lo >= f.end


class TestEngineWithFilters:
    def test_protected_arena_never_reclaimed(self, kernel, fast_attrs, queue):
        """A reject filter pins an arena in memory even though its
        access pattern matches the reclamation scheme."""
        kernel.mmap(BASE, 64 * MIB)
        scheme = parse_scheme("4K max min min 200ms max pageout", fast_attrs)
        protected = (BASE + 16 * MIB, BASE + 32 * MIB)
        scheme.filters = [AddressFilter(*protected, allow=False)]
        monitor = DataAccessMonitor(VirtualPrimitive(kernel), fast_attrs, seed=3)
        engine = SchemesEngine(kernel, [scheme])
        monitor.attach_engine(engine)
        monitor.start(queue)
        # Everything cold after one initial touch.
        kernel.apply_access(BASE, BASE + 64 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(kernel, queue, [], n_epochs=20)
        pt = kernel.space.vmas[0].pages
        lo = 16 * MIB // 4096
        hi = 32 * MIB // 4096
        assert pt.present[lo:hi].all()  # the arena survived
        assert kernel.rss_bytes() <= 20 * MIB  # the rest was reclaimed

    def test_allow_filter_limits_scope(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        scheme = parse_scheme("4K max min min 200ms max pageout", fast_attrs)
        scheme.filters = [AddressFilter(BASE, BASE + 8 * MIB, allow=True)]
        monitor = DataAccessMonitor(VirtualPrimitive(kernel), fast_attrs, seed=3)
        engine = SchemesEngine(kernel, [scheme])
        monitor.attach_engine(engine)
        monitor.start(queue)
        kernel.apply_access(BASE, BASE + 64 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(kernel, queue, [], n_epochs=20)
        pt = kernel.space.vmas[0].pages
        # Only the first 8 MiB may have been touched by the scheme.
        assert pt.present[8 * MIB // 4096 :].all()
        assert not pt.present[: 8 * MIB // 4096].all()

    def test_with_pattern_preserves_filters(self, fast_attrs):
        scheme = parse_scheme("4K max min min 1s max pageout", fast_attrs)
        scheme.filters = [AddressFilter(0, MIB, allow=False)]
        tuned = scheme.with_pattern(min_age_us=5_000_000)
        assert tuned.filters == scheme.filters
