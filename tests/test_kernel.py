"""SimKernel: the access path, management ops, reclaim and accounting."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim.kernel import SimKernel
from repro.sim.machine import GuestSpec, get_instance
from repro.sim.pagetable import PAGE_SIZE, PAGES_PER_HUGE
from repro.sim.swap import NoSwapDevice, ZramDevice
from repro.sim.thp import ThpPolicy
from repro.units import MIB, MSEC, SEC

BASE = 0x7F00_0000_0000
EPOCH = 100 * MSEC


class TestAccessPath:
    def test_first_touch_allocates(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=EPOCH)
        assert kernel.rss_bytes() == MIB
        assert kernel.metrics.minor_faults == MIB // PAGE_SIZE
        assert kernel.frames.allocated == MIB // PAGE_SIZE

    def test_second_touch_no_new_faults(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=EPOCH)
        before = kernel.metrics.minor_faults
        kernel.apply_access(BASE, BASE + MIB, now=EPOCH, epoch_us=EPOCH)
        assert kernel.metrics.minor_faults == before

    def test_swapped_touch_major_fault_with_latency(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=EPOCH)
        kernel.pageout(BASE, BASE + MIB, now=EPOCH)
        kernel.apply_access(BASE, BASE + MIB, now=2 * EPOCH, epoch_us=EPOCH)
        assert kernel.metrics.major_faults == MIB // PAGE_SIZE
        assert kernel.metrics.runtime.major_fault_us > 0
        assert kernel.rss_bytes() == MIB

    def test_rates_declared_per_epoch(self, kernel):
        vma = kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(
            BASE, BASE + MIB, now=0, epoch_us=EPOCH, touches_per_page=50
        )
        assert vma.pages.rate[0] == pytest.approx(500.0)  # 50 / 0.1 s
        kernel.begin_epoch()
        assert vma.pages.rate[0] == 0.0

    def test_access_spanning_gap(self, kernel):
        kernel.mmap(BASE, MIB)
        kernel.mmap(BASE + 2 * MIB, MIB)
        kernel.apply_access(BASE, BASE + 3 * MIB, now=0, epoch_us=EPOCH)
        assert kernel.rss_bytes() == 2 * MIB

    def test_memory_stall_accounted(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(
            BASE, BASE + MIB, now=0, epoch_us=EPOCH, stall_weight=2.0
        )
        expected = (MIB // PAGE_SIZE) * 2.0 * kernel.costs.dram_cost_us
        assert kernel.metrics.runtime.memory_stall_us == pytest.approx(expected)

    def test_zero_epoch_rejected(self, kernel):
        kernel.mmap(BASE, MIB)
        with pytest.raises(ConfigError):
            kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=0)

    def test_end_epoch_records_memory(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=EPOCH)
        kernel.end_epoch(EPOCH, compute_us=70000)
        kernel.end_epoch(2 * EPOCH, compute_us=70000)
        assert kernel.metrics.memory.avg_rss() == pytest.approx(MIB)
        assert kernel.metrics.runtime.compute_us == 140000


class TestMunmap:
    def test_releases_frames_and_swap(self, kernel):
        vma = kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + 2 * MIB, now=0, epoch_us=EPOCH)
        kernel.pageout(BASE, BASE + MIB, now=EPOCH)
        swap_used = kernel.swap.used_pages
        assert swap_used > 0
        kernel.munmap(vma)
        assert kernel.frames.allocated == 0
        assert kernel.swap.used_pages == 0
        assert kernel.rss_bytes() == 0


class TestPageout:
    def test_pageout_reduces_rss(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + 2 * MIB, now=0, epoch_us=EPOCH)
        n = kernel.pageout(BASE, BASE + MIB, now=EPOCH)
        assert n == MIB // PAGE_SIZE
        assert kernel.rss_bytes() == MIB
        assert kernel.metrics.pages_swapped_out == n

    def test_pageout_respects_swap_capacity(self, small_guest):
        kernel = SimKernel(small_guest, swap=ZramDevice(PAGE_SIZE * 10), seed=1)
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=EPOCH)
        n = kernel.pageout(BASE, BASE + MIB, now=EPOCH)
        assert n == 10  # only ten swap slots exist
        assert kernel.rss_bytes() == MIB - 10 * PAGE_SIZE

    def test_pageout_with_no_swap_is_noop(self, small_guest):
        kernel = SimKernel(small_guest, swap=NoSwapDevice(), seed=1)
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=EPOCH)
        assert kernel.pageout(BASE, BASE + MIB, now=EPOCH) == 0
        assert kernel.rss_bytes() == MIB


class TestMadvise:
    def test_willneed_prefetches(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=EPOCH)
        kernel.pageout(BASE, BASE + MIB, now=EPOCH)
        n = kernel.madvise_willneed(BASE, BASE + MIB, now=2 * EPOCH)
        assert n == MIB // PAGE_SIZE
        assert kernel.rss_bytes() == MIB
        # Prefetch is asynchronous: no major-fault latency charged.
        assert kernel.metrics.runtime.major_fault_us == 0

    def test_cold_deactivates_for_lru(self, kernel):
        vma = kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + 2 * MIB, now=0, epoch_us=EPOCH)
        kernel.madvise_cold(BASE, BASE + MIB, now=EPOCH)
        victims = kernel.lru.select_victims(10)
        (victim_vma, idx), = victims
        assert victim_vma is vma
        assert (idx < MIB // PAGE_SIZE).all()

    def test_hugepage_promotes_and_bloats(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + 64 * PAGE_SIZE, now=0, epoch_us=EPOCH)
        promotions = kernel.madvise_hugepage(BASE, BASE + 2 * MIB, now=EPOCH)
        assert promotions == 1
        assert kernel.rss_bytes() == 2 * MIB
        assert kernel.metrics.thp_bloat_pages == PAGES_PER_HUGE - 64
        assert kernel.metrics.runtime.thp_alloc_us > 0

    def test_hugepage_skips_empty_chunks(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        assert kernel.madvise_hugepage(BASE, BASE + 4 * MIB, now=0) == 0

    def test_nohugepage_returns_bloat(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + 64 * PAGE_SIZE, now=0, epoch_us=EPOCH)
        kernel.madvise_hugepage(BASE, BASE + 2 * MIB, now=EPOCH)
        demotions = kernel.madvise_nohugepage(BASE, BASE + 2 * MIB, now=2 * EPOCH)
        assert demotions == 1
        assert kernel.rss_bytes() == 64 * PAGE_SIZE
        assert kernel.frames.allocated == 64

    def test_partial_chunk_range_not_promoted(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + 2 * MIB, now=0, epoch_us=EPOCH)
        # Range covers only half a chunk: no full chunk inside it.
        assert kernel.madvise_hugepage(BASE, BASE + MIB, now=EPOCH) == 0


class TestPressureReclaim:
    def test_reclaim_triggers_above_watermark(self, small_guest):
        kernel = SimKernel(small_guest, swap=ZramDevice(256 * MIB), seed=1)
        kernel.mmap(BASE, 512 * MIB)
        # Touch more than the 256 MiB of guest DRAM in two waves; the
        # second forces eviction of the (older) first wave.
        kernel.apply_access(BASE, BASE + 200 * MIB, now=0, epoch_us=EPOCH)
        kernel.end_epoch(EPOCH, 1.0)
        kernel.apply_access(
            BASE + 200 * MIB, BASE + 400 * MIB, now=EPOCH, epoch_us=EPOCH
        )
        kernel.end_epoch(2 * EPOCH, 1.0)
        assert kernel.metrics.reclaim_evictions > 0
        assert kernel.frames.allocated <= kernel.frames.n_frames

    def test_khugepaged_scan_respects_mode(self, small_guest):
        kernel = SimKernel(small_guest, thp=ThpPolicy(mode="never"), seed=1)
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + 2 * MIB, now=0, epoch_us=EPOCH)
        assert kernel.khugepaged_scan(now=EPOCH)["promotions"] == 0

    def test_khugepaged_scan_promotes_in_always(self, small_guest):
        kernel = SimKernel(small_guest, thp=ThpPolicy(mode="always"), seed=1)
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + 2 * MIB, now=0, epoch_us=EPOCH)
        result = kernel.khugepaged_scan(now=EPOCH)
        assert result["promotions"] == 1  # the fully-touched chunk


class TestMonitoringHooks:
    def test_access_probabilities_mapped_and_gaps(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(
            BASE, BASE + MIB, now=0, epoch_us=EPOCH, touches_per_page=1000
        )
        addrs = np.array([BASE, BASE + 2 * MIB, BASE + 100 * MIB])
        probs = kernel.access_probabilities(addrs, window_us=5000)
        assert probs[0] > 0.9
        assert probs[1] == 0.0  # mapped but cold
        assert probs[2] == 0.0  # unmapped gap

    def test_frame_access_probabilities_via_rmap(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(
            BASE, BASE + MIB, now=0, epoch_us=EPOCH, touches_per_page=1000
        )
        # Frames 0.. hold the touched pages (allocated lowest-first).
        probs = kernel.frame_access_probabilities(np.array([0, 1]), window_us=5000)
        assert (probs > 0.9).all()

    def test_free_frames_read_as_cold(self, kernel):
        probs = kernel.frame_access_probabilities(np.array([100]), window_us=5000)
        assert probs[0] == 0.0

    def test_charge_monitor_checks(self, kernel):
        kernel.charge_monitor_checks(1000)
        assert kernel.metrics.monitor_checks == 1000
        assert kernel.metrics.monitor_cpu_us == pytest.approx(
            1000 * kernel.costs.pte_check_us + kernel.costs.kdamond_wakeup_us
        )
        assert kernel.metrics.runtime.monitor_interference_us > 0

    def test_charge_monitor_wakeup_only(self, kernel):
        kernel.charge_monitor_checks(0)
        assert kernel.metrics.monitor_cpu_us == pytest.approx(
            kernel.costs.kdamond_wakeup_us
        )


class TestSystemBytes:
    def test_zram_overhead_counted(self, small_guest):
        kernel = SimKernel(small_guest, swap=ZramDevice(64 * MIB), seed=1)
        kernel.mmap(BASE, 4 * MIB)
        kernel.apply_access(BASE, BASE + 2 * MIB, now=0, epoch_us=EPOCH)
        kernel.pageout(BASE, BASE + 2 * MIB, now=EPOCH)
        assert kernel.rss_bytes() == 0
        assert kernel.system_bytes() == kernel.swap.dram_overhead_bytes()
        assert kernel.system_bytes() > 0

    def test_guest_spec_from_machine(self):
        kernel = SimKernel(get_instance("i3.metal"), seed=1)
        assert kernel.guest.dram_bytes == get_instance("i3.metal").dram_bytes // 4

    def test_bad_guest_rejected(self):
        with pytest.raises(ConfigError):
            SimKernel("not-a-machine")
