"""Fault injection and the graceful-degradation paths it exercises.

Three layers under test:

* the fault model itself — spec/plan validation, plan files, and the
  injector's per-spec RNG substreams (deterministic, independent);
* the recovery paths — kernel load-shedding instead of
  :class:`~repro.errors.SwapFullError`, tuner retry-with-backoff,
  monitor ticks surviving dropped/flaky samples;
* the property that *any* valid fault plan degrades a run without
  breaking its structural invariants.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    FaultError,
    MonitorStateError,
    SwapFullError,
    TuningError,
)
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    builtin_chaos_plan,
    load_fault_plan,
    worker_crash_decision,
)
from repro.monitor.attrs import MonitorAttrs
from repro.monitor.core import DataAccessMonitor
from repro.monitor.primitives import VirtualPrimitive
from repro.sim.clock import EventQueue
from repro.sim.kernel import SimKernel
from repro.sim.machine import GuestSpec, get_instance
from repro.sim.swap import NoSwapDevice, ZramDevice
from repro.trace import TraceBus
from repro.trace.events import (
    DegradedModeEntered,
    DegradedModeExited,
    FaultInjected,
    RetryAttempted,
)
from repro.tuning.runtime import AutoTuner
from repro.tuning.sampler import nr_samples_for_budget
from repro.units import MIB, MSEC, SEC

from tests.helpers import BASE, run_epochs

EPOCH = 100 * MSEC


def plan_of(*rows, seed=0):
    return FaultPlan.build(list(rows), seed=seed)


# ---------------------------------------------------------------------------
# Spec and plan validation
# ---------------------------------------------------------------------------
class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultSpec(kind="gamma_ray")

    def test_empty_window_rejected(self):
        with pytest.raises(FaultError, match="empty or negative window"):
            FaultSpec(kind="swap_full", start_us=SEC, end_us=SEC)

    def test_probability_bounds(self):
        with pytest.raises(FaultError, match="probability"):
            FaultSpec(kind="flaky_bits", probability=0.0)
        with pytest.raises(FaultError, match="probability"):
            FaultSpec(kind="flaky_bits", probability=1.5)

    def test_magnitude_required_where_meaningful(self):
        with pytest.raises(FaultError, match="magnitude"):
            FaultSpec(kind="pressure_spike")
        with pytest.raises(FaultError, match="magnitude"):
            FaultSpec(kind="late_epoch", magnitude=0)

    def test_from_dict_parses_time_strings(self):
        spec = FaultSpec.from_dict(
            {"kind": "swap_full", "start": "500ms", "end": "2s"}
        )
        assert spec.start_us == 500 * MSEC
        assert spec.end_us == 2 * SEC

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(FaultError, match="unknown fault-spec key"):
            FaultSpec.from_dict({"kind": "swap_full", "strat": "2s"})

    def test_every_kind_maps_to_a_hook(self):
        from repro.faults.spec import _NEEDS_MAGNITUDE

        for kind in FAULT_KINDS:
            extra = {"magnitude": 1.0} if kind in _NEEDS_MAGNITUDE else {}
            assert "." in FaultSpec(kind=kind, **extra).hook


class TestFaultPlan:
    def test_roundtrip_through_dict(self):
        plan = builtin_chaos_plan(seed=3)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_empty_plan_rejected(self):
        with pytest.raises(FaultError, match="declares no faults"):
            FaultPlan.from_dict({"seed": 1, "faults": []})

    def test_unknown_plan_key_rejected(self):
        with pytest.raises(FaultError, match="unknown fault-plan key"):
            FaultPlan.from_dict({"faults": [{"kind": "swap_full"}], "sede": 1})

    def test_only_scopes_by_kind(self):
        plan = builtin_chaos_plan()
        sub = plan.only("swap_full")
        assert [s.kind for s in sub.specs] == ["swap_full"]
        assert sub.seed == plan.seed

    def test_load_json_plan(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text(
            json.dumps({"seed": 9, "faults": [{"kind": "swap_full", "start": 0}]})
        )
        plan = load_fault_plan(path)
        assert plan.seed == 9
        assert plan.name == "p"  # falls back to the file stem
        assert plan.kinds() == ["swap_full"]

    def test_load_toml_plan(self, tmp_path):
        path = tmp_path / "p.toml"
        path.write_text(
            'seed = 4\n[[faults]]\nkind = "flaky_bits"\nprobability = 0.5\n'
        )
        plan = load_fault_plan(path)
        assert plan.seed == 4
        assert plan.specs[0].probability == 0.5

    def test_missing_file_is_fault_error(self, tmp_path):
        with pytest.raises(FaultError, match="cannot read fault plan"):
            load_fault_plan(tmp_path / "absent.toml")

    def test_example_plan_loads(self):
        # The repo's shipped example must stay loadable.
        plan = load_fault_plan("examples/faults/smoke.toml")
        assert plan.name == "smoke"
        assert len(plan) == 5


# ---------------------------------------------------------------------------
# Injector determinism
# ---------------------------------------------------------------------------
class TestInjectorDeterminism:
    def _decisions(self, injector, n=200):
        out = []
        for i in range(n):
            now = i * 10 * MSEC
            out.append(
                (
                    injector.drop_sample_tick(now),
                    injector.probe_fails(now),
                    injector.engine_stalled(now),
                )
            )
        return out

    def test_same_plan_same_decisions(self):
        plan = plan_of(
            dict(kind="drop_sample", probability=0.3),
            dict(kind="probe_failure", probability=0.3),
            dict(kind="engine_stall", probability=0.3),
            seed=5,
        )
        a = self._decisions(FaultInjector(plan))
        b = self._decisions(FaultInjector(plan))
        assert a == b
        assert any(any(row) for row in a)  # something actually fired

    def test_substreams_independent_of_other_specs(self):
        # Appending a spec must not shift an earlier spec's decisions:
        # each spec draws from rng([plan.seed, spec_index]).
        base = plan_of(dict(kind="drop_sample", probability=0.3), seed=5)
        extended = plan_of(
            dict(kind="drop_sample", probability=0.3),
            dict(kind="engine_stall", probability=0.9),
            seed=5,
        )
        ticks = [i * 10 * MSEC for i in range(200)]
        a = [FaultInjector(base).drop_sample_tick(t) for t in ticks]
        inj = FaultInjector(extended)
        b = [inj.drop_sample_tick(t) for t in ticks]
        # Interleave draws from the second spec to prove isolation.
        inj2 = FaultInjector(extended)
        c = []
        for t in ticks:
            inj2.engine_stalled(t)
            c.append(inj2.drop_sample_tick(t))
        assert a == b == c

    def test_window_activation_latched_once(self):
        # probability applies to the window as a whole: a swap_full
        # window either activates for its entire span or not at all.
        plan = plan_of(
            dict(kind="swap_full", start=0, end=10 * SEC, probability=0.5),
            seed=1,
        )
        inj = FaultInjector(plan)
        values = {inj.swap_is_full(t * SEC) for t in range(10)}
        assert len(values) == 1

    def test_max_fires_bounds_firings(self):
        plan = plan_of(
            dict(kind="probe_failure", probability=1.0, max_fires=3), seed=0
        )
        inj = FaultInjector(plan)
        fires = sum(inj.probe_fails(i * MSEC) for i in range(50))
        assert fires == 3

    def test_worker_crash_stateless_and_retry_safe(self):
        hits = [worker_crash_decision(7, 0.3, i, 0) for i in range(100)]
        assert hits == [worker_crash_decision(7, 0.3, i, 0) for i in range(100)]
        assert 0 < sum(hits) < 100
        # Attempt 1+ never crashes: one retry always recovers the point.
        assert not any(worker_crash_decision(7, 1.0, i, 1) for i in range(100))

    def test_fault_events_emitted_on_bus(self):
        bus = TraceBus(ring_capacity=0)
        plan = plan_of(dict(kind="probe_failure", probability=1.0, max_fires=2))
        events = []
        bus.subscribe(FaultInjected, events.append)
        inj = FaultInjector(plan, trace=bus)
        inj.probe_fails(0)
        inj.probe_fails(MSEC)
        inj.probe_fails(2 * MSEC)  # exhausted: no third event
        assert [(e.hook, e.fault) for e in events] == [
            ("tuner.probe", "probe_failure"),
            ("tuner.probe", "probe_failure"),
        ]


# ---------------------------------------------------------------------------
# Kernel: shed-load instead of SwapFullError, degraded-mode lifecycle
# ---------------------------------------------------------------------------
def _tiny_kernel(swap, oom_policy="raise", faults=None, trace=None, dram=32 * MIB):
    guest = GuestSpec(host=get_instance("i3.metal"), vcpus=2, dram_bytes=dram)
    return SimKernel(
        guest, swap=swap, seed=7, faults=faults, oom_policy=oom_policy, trace=trace
    )


class TestKernelShedding:
    def test_raise_policy_still_raises(self):
        kernel = _tiny_kernel(NoSwapDevice(), oom_policy="raise")
        kernel.mmap(BASE, 64 * MIB)
        with pytest.raises(SwapFullError):
            kernel.apply_access(BASE, BASE + 64 * MIB, now=0, epoch_us=EPOCH)

    def test_shed_policy_completes_and_degrades(self):
        bus = TraceBus(ring_capacity=0)
        entered = []
        bus.subscribe(DegradedModeEntered, entered.append)
        kernel = _tiny_kernel(NoSwapDevice(), oom_policy="shed", trace=bus)
        kernel.mmap(BASE, 64 * MIB)
        kernel.apply_access(BASE, BASE + 64 * MIB, now=0, epoch_us=EPOCH)
        assert kernel.degraded
        assert kernel.metrics.shed_pages > 0
        assert kernel.rss_bytes() <= 32 * MIB
        assert [e.subsystem for e in entered] == ["kernel"]
        # Shedding is bounded: granted frames were all actually used.
        assert kernel.frames.free_frames() == 0

    def test_shed_is_idempotent_per_degradation(self):
        bus = TraceBus(ring_capacity=0)
        entered = []
        bus.subscribe(DegradedModeEntered, entered.append)
        kernel = _tiny_kernel(NoSwapDevice(), oom_policy="shed", trace=bus)
        kernel.mmap(BASE, 96 * MIB)
        kernel.apply_access(BASE, BASE + 48 * MIB, now=0, epoch_us=EPOCH)
        kernel.apply_access(
            BASE + 48 * MIB, BASE + 96 * MIB, now=EPOCH, epoch_us=EPOCH
        )
        assert len(entered) == 1  # still the same degradation episode

    def test_swap_full_window_recovers_after_window(self):
        bus = TraceBus(ring_capacity=0)
        exited = []
        bus.subscribe(DegradedModeExited, exited.append)
        plan = plan_of(dict(kind="swap_full", start=0, end=1 * SEC))
        inj = FaultInjector(plan, trace=bus)
        kernel = _tiny_kernel(
            ZramDevice(64 * MIB), oom_policy="shed", faults=inj, trace=bus
        )
        kernel.mmap(BASE, 64 * MIB)
        # Inside the window the swap device reports zero free slots:
        # the overcommitted touch must shed, not raise.
        kernel.apply_access(BASE, BASE + 64 * MIB, now=0, epoch_us=EPOCH)
        assert kernel.degraded
        assert kernel.metrics.shed_pages > 0
        # Past the window, the next epoch boundary notices swap is
        # usable again and leaves degraded mode.
        if bus.owns_clock:
            bus.advance_to(2 * SEC)
        kernel.end_epoch(2 * SEC, compute_us=EPOCH)
        assert not kernel.degraded
        assert [e.subsystem for e in exited] == ["kernel"]
        assert exited[0].degraded_us > 0

    def test_late_epoch_charges_stall_time(self):
        plan = plan_of(
            dict(kind="late_epoch", probability=1.0, magnitude=50 * MSEC)
        )
        kernel = _tiny_kernel(ZramDevice(64 * MIB), faults=FaultInjector(plan))
        kernel.mmap(BASE, MIB)
        kernel.apply_access(BASE, BASE + MIB, now=0, epoch_us=EPOCH)
        kernel.end_epoch(EPOCH, compute_us=70_000)
        assert kernel.metrics.runtime.compute_us == 70_000 + 50 * MSEC

    def test_no_faults_no_behaviour_change(self):
        # faults=None and an inert injector must be indistinguishable.
        quiet = FaultInjector(
            plan_of(dict(kind="swap_full", start=100 * SEC, end=101 * SEC))
        )
        runs = []
        for faults in (None, quiet):
            kernel = _tiny_kernel(ZramDevice(64 * MIB), faults=faults)
            kernel.mmap(BASE, 48 * MIB)
            kernel.apply_access(BASE, BASE + 24 * MIB, now=0, epoch_us=EPOCH)
            kernel.end_epoch(EPOCH, compute_us=70_000)
            kernel.apply_access(
                BASE + 24 * MIB, BASE + 48 * MIB, now=EPOCH, epoch_us=EPOCH
            )
            kernel.end_epoch(2 * EPOCH, compute_us=70_000)
            runs.append(kernel.metrics.as_dict())
        assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# Monitor: lifecycle misuse + surviving flaky/dropped samples
# ---------------------------------------------------------------------------
class TestMonitorFaults:
    def test_double_start_is_state_error(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        monitor = DataAccessMonitor(VirtualPrimitive(kernel), fast_attrs, seed=3)
        monitor.start(queue)
        with pytest.raises(MonitorStateError, match="already running"):
            monitor.start(queue)
        monitor.stop()
        monitor.start(queue)  # restart after stop is legal
        monitor.stop()

    def _run_monitored(self, kernel, attrs, queue, faults=None):
        monitor = DataAccessMonitor(
            VirtualPrimitive(kernel), attrs, seed=3, faults=faults
        )
        monitor.start(queue)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 32 * MIB, touches_per_page=8)],
            n_epochs=10,
        )
        monitor.stop()
        return monitor

    def test_flaky_bits_lose_accesses_but_keep_structure(
        self, kernel, fast_attrs, queue
    ):
        kernel.mmap(BASE, 64 * MIB)
        inj = FaultInjector(plan_of(dict(kind="flaky_bits", probability=1.0)))
        monitor = self._run_monitored(kernel, fast_attrs, queue, faults=inj)
        # Every PTE read came back clear: hot memory looks idle...
        assert all(r.nr_accesses == 0 for r in monitor.regions)
        # ...but the monitor itself keeps ticking and stays consistent.
        assert monitor.total_checks > 0
        monitor.check_invariants()

    def test_drop_sample_skips_checks_not_ticks(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        inj = FaultInjector(plan_of(dict(kind="drop_sample", probability=1.0)))
        monitor = self._run_monitored(kernel, fast_attrs, queue, faults=inj)
        assert monitor.total_checks == 0
        monitor.check_invariants()


# ---------------------------------------------------------------------------
# Tuner: bounded retry with deterministic exponential backoff
# ---------------------------------------------------------------------------
def _tuner(faults=None, trace=None, probe_attempts=3):
    return AutoTuner(
        lambda param: (1000.0 + param, 2000.0),
        (1200.0, 2500.0),
        0.0,
        60.0,
        seed=4,
        trace=trace,
        faults=faults,
        probe_attempts=probe_attempts,
    )


class TestTunerRetry:
    def _retry_schedule(self):
        bus = TraceBus(ring_capacity=0)
        retries = []
        bus.subscribe(RetryAttempted, retries.append)
        plan = plan_of(dict(kind="probe_failure", probability=1.0, max_fires=2))
        tuner = _tuner(faults=FaultInjector(plan, trace=bus), trace=bus)
        result = tuner.tune(nr_samples=4)
        return result, [(r.attempt, r.backoff_us) for r in retries]

    def test_retries_recover_and_backoff_doubles(self):
        result, schedule = self._retry_schedule()
        assert schedule == [(1, 100_000), (2, 200_000)]
        assert result.best_param >= 0.0  # the session completed

    def test_retry_schedule_replays_identically(self):
        a = self._retry_schedule()[1]
        b = self._retry_schedule()[1]
        assert a == b

    def test_exhausted_retries_raise_tuning_error(self):
        plan = plan_of(dict(kind="probe_failure", probability=1.0))
        tuner = _tuner(faults=FaultInjector(plan), probe_attempts=3)
        with pytest.raises(TuningError, match="failed 3 time"):
            tuner.tune(nr_samples=4)

    def test_budget_below_one_unit_is_clear_error(self):
        with pytest.raises(TuningError, match="does not cover even one unit"):
            nr_samples_for_budget(5 * SEC, 10 * SEC)

    def test_budget_below_two_samples_is_clear_error(self):
        with pytest.raises(TuningError, match="at least two samples"):
            nr_samples_for_budget(15 * SEC, 10 * SEC)

    def test_tune_with_budget_propagates_budget_error(self):
        with pytest.raises(TuningError, match="tuning budget"):
            _tuner().tune_with_budget(SEC, 10 * SEC)


# ---------------------------------------------------------------------------
# Property: any valid fault plan degrades without breaking invariants
# ---------------------------------------------------------------------------
_SPEC_DICTS = st.one_of(
    st.builds(
        lambda kind, start_s, dur_s, p: dict(
            kind=kind,
            start=start_s * SEC,
            end=(start_s + dur_s) * SEC,
            probability=p,
        ),
        st.sampled_from(["swap_full", "flaky_bits", "drop_sample", "engine_stall"]),
        st.integers(0, 2),
        st.integers(1, 3),
        st.floats(0.05, 1.0),
    ),
    st.builds(
        lambda kind, p, mag: dict(kind=kind, probability=p, magnitude=mag),
        st.sampled_from(["pressure_spike", "late_epoch"]),
        st.floats(0.05, 1.0),
        st.integers(1, 20_000),
    ),
)


class TestFaultPlanProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        rows=st.lists(_SPEC_DICTS, min_size=1, max_size=4),
        plan_seed=st.integers(0, 2**32 - 1),
    )
    def test_any_plan_preserves_run_invariants(self, rows, plan_seed):
        plan = FaultPlan.build(rows, seed=plan_seed)
        inj = FaultInjector(plan)
        guest = GuestSpec(
            host=get_instance("i3.metal"), vcpus=2, dram_bytes=64 * MIB
        )
        kernel = SimKernel(
            guest,
            swap=ZramDevice(16 * MIB),
            seed=7,
            faults=inj,
            oom_policy="shed",
        )
        kernel.mmap(BASE, 96 * MIB)
        attrs = MonitorAttrs(
            sampling_interval_us=1 * MSEC,
            aggregation_interval_us=20 * MSEC,
            regions_update_interval_us=200 * MSEC,
            min_nr_regions=5,
            max_nr_regions=60,
        )
        monitor = DataAccessMonitor(
            VirtualPrimitive(kernel), attrs, seed=3, faults=inj
        )
        queue = EventQueue()
        monitor.start(queue)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 80 * MIB, touches_per_page=4)],
            n_epochs=8,
        )
        monitor.stop()
        # Degradation may have shed pages, but never corrupts structure:
        monitor.check_invariants()
        assert attrs.min_nr_regions <= monitor.nr_regions() <= attrs.max_nr_regions
        rss = kernel.rss_bytes()
        assert 0 <= rss <= 64 * MIB
        assert kernel.metrics.shed_pages >= 0
        assert kernel.metrics.memory.peak_rss <= 64 * MIB
