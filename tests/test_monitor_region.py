"""Region data structure: split, merge, aging math, layout clipping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.monitor.region import (
    MIN_REGION_SIZE,
    Region,
    merge_two,
    pick_sampling_addrs,
    regions_intersecting,
    split_region,
)

K = MIN_REGION_SIZE


class TestRegion:
    def test_minimum_size_enforced(self):
        with pytest.raises(ConfigError):
            Region(0, K - 1)

    def test_fresh_counters(self):
        region = Region(0, 10 * K)
        assert region.nr_accesses == 0
        assert region.age == 0
        assert region.size == 10 * K

    def test_overlaps(self):
        region = Region(10 * K, 20 * K)
        assert region.overlaps(0, 11 * K)
        assert region.overlaps(19 * K, 30 * K)
        assert not region.overlaps(0, 10 * K)
        assert not region.overlaps(20 * K, 30 * K)


class TestSplit:
    def test_children_tile_parent(self):
        parent = Region(0, 10 * K)
        left, right = split_region(parent, 4 * K)
        assert (left.start, left.end) == (0, 4 * K)
        assert (right.start, right.end) == (4 * K, 10 * K)

    def test_children_inherit_counters(self):
        parent = Region(0, 10 * K)
        parent.nr_accesses = 7
        parent.age = 3
        parent.last_nr_accesses = 5
        for child in split_region(parent, 5 * K):
            assert child.nr_accesses == 7
            assert child.age == 3
            assert child.last_nr_accesses == 5

    def test_split_too_close_to_edge_rejected(self):
        parent = Region(0, 2 * K)
        with pytest.raises(ConfigError):
            split_region(parent, K // 2)


class TestMerge:
    def test_merge_requires_adjacency(self):
        with pytest.raises(ConfigError):
            merge_two(Region(0, K), Region(2 * K, 3 * K))

    def test_size_weighted_access_count(self):
        left = Region(0, 3 * K)
        right = Region(3 * K, 4 * K)
        left.nr_accesses = 4
        right.nr_accesses = 8
        merged = merge_two(left, right)
        assert merged.nr_accesses == 5  # (4*3 + 8*1) / 4

    def test_size_weighted_age(self):
        left = Region(0, K)
        right = Region(K, 4 * K)
        left.age = 0
        right.age = 8
        merged = merge_two(left, right)
        assert merged.age == 6  # (0*1 + 8*3) / 4

    def test_merge_spans_union(self):
        merged = merge_two(Region(0, 2 * K), Region(2 * K, 5 * K))
        assert (merged.start, merged.end) == (0, 5 * K)

    @settings(max_examples=50, deadline=None)
    @given(
        split_at=st.integers(min_value=1, max_value=9),
        nr=st.integers(min_value=0, max_value=20),
        age=st.integers(min_value=0, max_value=100),
    )
    def test_split_then_merge_is_identity(self, split_at, nr, age):
        parent = Region(0, 10 * K)
        parent.nr_accesses = nr
        parent.age = age
        left, right = split_region(parent, split_at * K)
        merged = merge_two(left, right)
        assert (merged.start, merged.end) == (0, 10 * K)
        assert merged.nr_accesses == nr
        assert merged.age == age


class TestIntersecting:
    def test_surviving_regions_keep_counters(self):
        region = Region(0, 10 * K)
        region.nr_accesses = 9
        region.age = 4
        out = regions_intersecting([region], [(0, 10 * K)])
        assert len(out) == 1
        assert out[0].nr_accesses == 9
        assert out[0].age == 4

    def test_clipped_to_new_range(self):
        region = Region(0, 10 * K)
        out = regions_intersecting([region], [(2 * K, 6 * K)])
        assert [(r.start, r.end) for r in out] == [(2 * K, 6 * K)]

    def test_uncovered_ranges_get_fresh_regions(self):
        region = Region(0, 4 * K)
        out = regions_intersecting([region], [(0, 10 * K)])
        assert [(r.start, r.end) for r in out] == [(0, 4 * K), (4 * K, 10 * K)]
        assert out[1].nr_accesses == 0

    def test_disjoint_region_dropped(self):
        region = Region(100 * K, 110 * K)
        out = regions_intersecting([region], [(0, 10 * K)])
        assert [(r.start, r.end) for r in out] == [(0, 10 * K)]

    def test_multiple_ranges(self):
        regions = [Region(0, 10 * K), Region(20 * K, 30 * K)]
        out = regions_intersecting(regions, [(0, 10 * K), (20 * K, 30 * K)])
        assert len(out) == 2

    def test_regions_tile_ranges_without_overlap(self):
        regions = [Region(K, 3 * K), Region(5 * K, 8 * K)]
        out = regions_intersecting(regions, [(0, 10 * K)])
        prev = 0
        for region in out:
            assert region.start >= prev
            prev = region.end


class TestSamplingAddrs:
    def test_addrs_inside_regions(self):
        rng = np.random.default_rng(0)
        regions = [Region(i * 100 * K, (i + 1) * 100 * K) for i in range(20)]
        addrs = pick_sampling_addrs(regions, rng)
        for region, addr in zip(regions, addrs):
            assert region.start <= addr < region.end
            assert addr % K == 0

    def test_empty_region_list(self):
        rng = np.random.default_rng(0)
        assert pick_sampling_addrs([], rng).size == 0

    def test_single_page_region_always_its_page(self):
        rng = np.random.default_rng(0)
        region = Region(5 * K, 6 * K)
        for _ in range(5):
            assert pick_sampling_addrs([region], rng)[0] == 5 * K

    def test_randomised_across_calls(self):
        rng = np.random.default_rng(0)
        region = Region(0, 1000 * K)
        seen = {int(pick_sampling_addrs([region], rng)[0]) for _ in range(20)}
        assert len(seen) > 5
