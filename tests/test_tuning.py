"""The auto-tuning runtime: score, sampler, fitting, tuner."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TuningError
from repro.tuning.fit import estimate_trend, find_peaks, fit_degree
from repro.tuning.runtime import AutoTuner
from repro.tuning.sampler import (
    GLOBAL_SHARE,
    SamplePlan,
    nr_samples_for_budget,
)
from repro.tuning.score import ScoreFunction, default_score_function


class TestScoreFunction:
    """Paper Listing 2 semantics."""

    def test_no_change_scores_zero(self):
        score = default_score_function()
        assert score(100.0, 100.0, 100.0, 100.0) == 0.0

    def test_memory_saving_scores_positive(self):
        score = default_score_function()
        # Same runtime, half the RSS: mscore = 0.5, even weights -> 25.
        assert score(100.0, 50.0, 100.0, 100.0) == pytest.approx(25.0)

    def test_slowdown_scores_negative(self):
        score = default_score_function()
        assert score(105.0, 100.0, 100.0, 100.0) == pytest.approx(-2.5)

    def test_sla_violation_returns_worst_so_far(self):
        score = default_score_function()
        first = score(100.0, 80.0, 100.0, 100.0)  # +10
        second = score(102.0, 60.0, 100.0, 100.0)  # +19
        violating = score(150.0, 10.0, 100.0, 100.0)  # 50% slowdown
        assert violating == min(first, second)

    def test_sla_violation_with_no_history_returns_floor(self):
        score = default_score_function()
        assert score(150.0, 10.0, 100.0, 100.0) == score.floor

    def test_sla_boundary_exclusive(self):
        # pscore must be strictly greater than -max_slowdown.
        score = default_score_function()
        exactly_ten = score(110.0, 50.0, 100.0, 100.0)
        assert exactly_ten == score.floor  # 10% drop violates "more than 10%"? paper: pscore > -0.1 fails at exactly -0.1

    def test_weights(self):
        score = ScoreFunction(perf_weight=1.0, memory_weight=0.0)
        assert score(100.0, 10.0, 100.0, 100.0) == 0.0  # memory ignored

    def test_reset_clears_history(self):
        score = default_score_function()
        score(100.0, 80.0, 100.0, 100.0)
        score.reset()
        assert score(150.0, 10.0, 100.0, 100.0) == score.floor

    def test_invalid_construction(self):
        with pytest.raises(TuningError):
            ScoreFunction(perf_weight=-1)
        with pytest.raises(TuningError):
            ScoreFunction(perf_weight=0, memory_weight=0)
        with pytest.raises(TuningError):
            ScoreFunction(max_slowdown=-0.1)

    def test_degenerate_baseline_rejected(self):
        with pytest.raises(TuningError):
            default_score_function()(100.0, 100.0, 0.0, 100.0)


class TestSampler:
    def test_budget_division(self):
        assert nr_samples_for_budget(100 * 60, 10 * 60) == 10

    def test_budget_too_small_rejected(self):
        with pytest.raises(TuningError):
            nr_samples_for_budget(10, 10)

    def test_zero_unit_work_rejected(self):
        with pytest.raises(TuningError):
            nr_samples_for_budget(100, 0)

    def test_global_local_split_60_40(self):
        plan = SamplePlan(lo=0.0, hi=60.0, nr_samples=10, rng=np.random.default_rng(0))
        assert plan.nr_global == 6
        assert plan.nr_local == 4

    def test_points_within_range(self):
        rng = np.random.default_rng(0)
        plan = SamplePlan(lo=5.0, hi=25.0, nr_samples=10, rng=rng)
        for p in plan.global_points():
            assert 5.0 <= p <= 25.0
        for p in plan.local_points(best=24.9):
            assert 5.0 <= p <= 25.0

    def test_local_points_near_best(self):
        rng = np.random.default_rng(0)
        plan = SamplePlan(lo=0.0, hi=100.0, nr_samples=10, rng=rng)
        for p in plan.local_points(best=50.0):
            assert 35.0 <= p <= 65.0  # within the 15% window

    def test_best_outside_range_rejected(self):
        plan = SamplePlan(lo=0.0, hi=1.0, nr_samples=4, rng=np.random.default_rng(0))
        with pytest.raises(TuningError):
            plan.local_points(best=2.0)

    def test_empty_range_rejected(self):
        with pytest.raises(TuningError):
            SamplePlan(lo=1.0, hi=1.0, nr_samples=4, rng=np.random.default_rng(0))

    def test_global_share_constant(self):
        assert GLOBAL_SHARE == pytest.approx(0.6)


class TestFit:
    def test_degree_rule(self):
        """Paper: degree = nr_samples / 3 to avoid over-fitting."""
        assert fit_degree(10) == 3
        assert fit_degree(30) == 10
        assert fit_degree(2) == 1

    def test_fit_recovers_linear_trend(self):
        xs = np.linspace(0, 10, 12)
        ys = 2 * xs + 1
        trend = estimate_trend(xs, ys, 0, 10)
        assert trend(5.0) == pytest.approx(11.0, abs=0.1)

    def test_fit_recovers_parabola_peak(self):
        xs = np.linspace(0, 10, 15)
        ys = -((xs - 4.0) ** 2)
        trend = estimate_trend(xs, ys, 0, 10)
        peaks = find_peaks(trend)
        best_x, best_y = peaks[0]
        assert best_x == pytest.approx(4.0, abs=0.3)

    def test_peaks_include_endpoints(self):
        # Monotonic increasing: peak must be the right endpoint.
        xs = np.linspace(0, 10, 9)
        ys = xs * 3.0
        trend = estimate_trend(xs, ys, 0, 10)
        best_x, _ = find_peaks(trend)[0]
        assert best_x == pytest.approx(10.0)

    def test_fit_with_noise_still_finds_peak(self):
        rng = np.random.default_rng(0)
        xs = np.linspace(0, 60, 20)
        ys = -((xs - 16.0) ** 2) / 20 + rng.normal(0, 2.0, xs.size)
        trend = estimate_trend(xs, ys, 0, 60)
        best_x, _ = find_peaks(trend)[0]
        assert 10 < best_x < 24

    def test_too_few_samples_rejected(self):
        with pytest.raises(TuningError):
            estimate_trend([1.0], [1.0], 0, 10)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TuningError):
            estimate_trend([1.0, 2.0], [1.0], 0, 10)

    def test_grid(self):
        trend = estimate_trend([0, 5, 10], [0, 5, 10], 0, 10)
        xs, ys = trend.grid(11)
        assert xs[0] == 0 and xs[-1] == 10
        assert len(ys) == 11


def make_tuner(score_shape, seed=1, noise=0.0):
    """Build a tuner over a synthetic score landscape.

    ``score_shape(x)`` gives the *score*; we invert it into
    (runtime, rss) pairs that the Listing 2 function maps back onto it:
    runtime fixed at baseline, rss = baseline * (1 - 2*score/100).
    """
    rng = np.random.default_rng(seed)

    def evaluate(x):
        score = score_shape(x) + (rng.normal(0, noise) if noise else 0.0)
        rss = 100.0 * (1.0 - 2.0 * score / 100.0)
        return 100.0, max(1.0, rss)

    return AutoTuner(evaluate, (100.0, 100.0), 0.0, 60.0, seed=seed)


class TestAutoTuner:
    def test_finds_interior_peak(self):
        tuner = make_tuner(lambda x: -((x - 16.0) ** 2) / 30.0 + 20.0)
        result = tuner.tune(nr_samples=12)
        assert 10 < result.best_param < 24

    def test_finds_monotonic_max_at_edge(self):
        """Figure 3 pattern 1: efficiency dominates everywhere."""
        tuner = make_tuner(lambda x: (60.0 - x) / 3.0)
        result = tuner.tune(nr_samples=10)
        assert result.best_param < 10

    def test_noise_tolerated(self):
        tuner = make_tuner(lambda x: -((x - 30.0) ** 2) / 50.0 + 15.0, noise=1.5)
        result = tuner.tune(nr_samples=15)
        assert 20 < result.best_param < 40

    def test_sample_split_matches_plan(self):
        tuner = make_tuner(lambda x: 0.0)
        result = tuner.tune(nr_samples=10)
        assert len(result.global_samples) == 6
        assert len(result.local_samples) == 4

    def test_budget_interface(self):
        tuner = make_tuner(lambda x: -abs(x - 20.0))
        result = tuner.tune_with_budget(time_limit_us=100, unit_work_us=10)
        assert len(result.samples) == 10

    def test_deterministic_given_seed(self):
        shape = lambda x: -((x - 16.0) ** 2) / 30.0
        a = make_tuner(shape, seed=5).tune(10)
        b = make_tuner(shape, seed=5).tune(10)
        assert a.best_param == b.best_param
        assert a.samples == b.samples

    def test_empty_range_rejected(self):
        with pytest.raises(TuningError):
            AutoTuner(lambda x: (1.0, 1.0), (100.0, 100.0), 5.0, 5.0)

    def test_bad_baseline_rejected(self):
        with pytest.raises(TuningError):
            AutoTuner(lambda x: (1.0, 1.0), (0.0, 100.0), 0.0, 60.0)

    @settings(max_examples=15, deadline=None)
    @given(peak=st.floats(min_value=10.0, max_value=50.0))
    def test_peak_recovery_property(self, peak):
        tuner = make_tuner(lambda x, p=peak: -((x - p) ** 2) / 40.0 + 10.0)
        result = tuner.tune(nr_samples=15)
        assert abs(result.best_param - peak) < 12.0
