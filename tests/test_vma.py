"""VMAs and address spaces."""

import numpy as np
import pytest

from repro.errors import AddressSpaceError, ConfigError
from repro.sim.pagetable import PAGE_SIZE
from repro.sim.vma import VMA, AddressSpace
from repro.units import KIB, MIB

BASE = 0x1_0000_0000


class TestVMA:
    def test_alignment_enforced(self):
        with pytest.raises(ConfigError):
            VMA(BASE + 1, BASE + PAGE_SIZE + 1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            VMA(BASE, BASE)

    def test_size_and_pages(self):
        vma = VMA(BASE, BASE + 16 * PAGE_SIZE)
        assert vma.size == 16 * PAGE_SIZE
        assert vma.pages.n_pages == 16

    def test_page_index(self):
        vma = VMA(BASE, BASE + 16 * PAGE_SIZE)
        assert vma.page_index(BASE) == 0
        assert vma.page_index(BASE + 5 * PAGE_SIZE + 100) == 5

    def test_page_index_out_of_range(self):
        vma = VMA(BASE, BASE + PAGE_SIZE)
        with pytest.raises(AddressSpaceError):
            vma.page_index(BASE + PAGE_SIZE)


class TestAddressSpace:
    def test_mmap_returns_sorted(self):
        space = AddressSpace()
        space.mmap(BASE + 10 * MIB, MIB)
        space.mmap(BASE, MIB)
        assert [v.start for v in space.vmas] == [BASE, BASE + 10 * MIB]

    def test_overlap_rejected(self):
        space = AddressSpace()
        space.mmap(BASE, 2 * MIB)
        with pytest.raises(AddressSpaceError):
            space.mmap(BASE + MIB, 2 * MIB)

    def test_adjacent_allowed(self):
        space = AddressSpace()
        space.mmap(BASE, MIB)
        space.mmap(BASE + MIB, MIB)
        assert len(space.vmas) == 2

    def test_munmap(self):
        space = AddressSpace()
        vma = space.mmap(BASE, MIB)
        space.munmap(vma)
        assert space.vmas == []

    def test_munmap_unknown_rejected(self):
        space = AddressSpace()
        vma = VMA(BASE, BASE + MIB)
        with pytest.raises(AddressSpaceError):
            space.munmap(vma)

    def test_generation_bumps_on_layout_change(self):
        space = AddressSpace()
        g0 = space.generation
        vma = space.mmap(BASE, MIB)
        g1 = space.generation
        space.munmap(vma)
        g2 = space.generation
        assert g0 < g1 < g2

    def test_find(self):
        space = AddressSpace()
        vma = space.mmap(BASE, MIB)
        assert space.find(BASE + 100) is vma
        assert space.find(BASE - 1) is None
        assert space.find(BASE + MIB) is None

    def test_find_empty_space(self):
        assert AddressSpace().find(BASE) is None


class TestResolve:
    def test_resolve_mixed(self):
        space = AddressSpace()
        space.mmap(BASE, MIB)
        space.mmap(BASE + 10 * MIB, MIB)
        addrs = np.array(
            [BASE, BASE + MIB - 1, BASE + 2 * MIB, BASE + 10 * MIB + PAGE_SIZE]
        )
        vma_idx, page_idx, mapped = space.resolve(addrs)
        assert list(mapped) == [True, True, False, True]
        assert list(vma_idx) == [0, 0, -1, 1]
        assert page_idx[0] == 0
        assert page_idx[1] == MIB // PAGE_SIZE - 1
        assert page_idx[3] == 1

    def test_resolve_empty_space(self):
        space = AddressSpace()
        _, _, mapped = space.resolve(np.array([BASE]))
        assert not mapped.any()

    def test_resolve_below_first_vma(self):
        space = AddressSpace()
        space.mmap(BASE, MIB)
        vma_idx, _, mapped = space.resolve(np.array([BASE - PAGE_SIZE]))
        assert not mapped[0]
        assert vma_idx[0] == -1


class TestRangesIn:
    def test_single_vma_clip(self):
        space = AddressSpace()
        space.mmap(BASE, MIB)
        ranges = list(space.ranges_in(BASE + PAGE_SIZE, BASE + 3 * PAGE_SIZE))
        assert len(ranges) == 1
        _, lo, hi = ranges[0]
        assert (lo, hi) == (1, 3)

    def test_spans_multiple_vmas(self):
        space = AddressSpace()
        space.mmap(BASE, MIB)
        space.mmap(BASE + 2 * MIB, MIB)
        ranges = list(space.ranges_in(BASE, BASE + 3 * MIB))
        assert len(ranges) == 2

    def test_gap_only_range_is_empty(self):
        space = AddressSpace()
        space.mmap(BASE, MIB)
        space.mmap(BASE + 4 * MIB, MIB)
        assert list(space.ranges_in(BASE + 2 * MIB, BASE + 3 * MIB)) == []

    def test_partial_page_rounds_up(self):
        space = AddressSpace()
        space.mmap(BASE, MIB)
        ranges = list(space.ranges_in(BASE, BASE + PAGE_SIZE + 7))
        _, lo, hi = ranges[0]
        assert (lo, hi) == (0, 2)

    def test_empty_range(self):
        space = AddressSpace()
        space.mmap(BASE, MIB)
        assert list(space.ranges_in(BASE + MIB, BASE)) == []


class TestThreeRegions:
    def test_classic_layout(self):
        """heap | big gap | mmap area | big gap | stack."""
        space = AddressSpace()
        space.mmap(0x5600_0000_0000, 8 * MIB, "heap")
        space.mmap(0x7F00_0000_0000, 512 * MIB, "data")
        space.mmap(0x7FFF_FFC0_0000, 256 * KIB, "stack")
        regions = space.three_regions()
        assert len(regions) == 3
        assert regions[0] == (0x5600_0000_0000, 0x5600_0000_0000 + 8 * MIB)
        assert regions[1] == (0x7F00_0000_0000, 0x7F00_0000_0000 + 512 * MIB)
        assert regions[2][1] == 0x7FFF_FFC0_0000 + 256 * KIB

    def test_single_vma_yields_one_region(self):
        space = AddressSpace()
        space.mmap(BASE, MIB)
        assert space.three_regions() == [(BASE, BASE + MIB)]

    def test_two_vmas_small_gap_spanned(self):
        # With only one gap, three_regions splits on it (it is one of
        # the two biggest by definition).
        space = AddressSpace()
        space.mmap(BASE, MIB)
        space.mmap(BASE + 2 * MIB, MIB)
        regions = space.three_regions()
        assert len(regions) == 2

    def test_empty_space_rejected(self):
        with pytest.raises(AddressSpaceError):
            AddressSpace().three_regions()


class TestAccounting:
    def test_mapped_and_resident_bytes(self):
        space = AddressSpace()
        vma = space.mmap(BASE, MIB)
        assert space.mapped_bytes() == MIB
        assert space.resident_bytes() == 0
        vma.pages.touch_range(0, 10, now=1)
        assert space.resident_bytes() == 10 * PAGE_SIZE

    def test_swapped_bytes(self):
        space = AddressSpace()
        vma = space.mmap(BASE, MIB)
        vma.pages.touch_range(0, 10, now=1)
        vma.pages.pageout_range(0, 4)  # returns (idx, n_dirty)
        assert space.swapped_bytes() == 4 * PAGE_SIZE

    def test_span(self):
        space = AddressSpace()
        space.mmap(BASE, MIB)
        space.mmap(BASE + 10 * MIB, MIB)
        assert space.span() == (BASE, BASE + 11 * MIB)

    def test_clear_rates_cascades(self):
        space = AddressSpace()
        vma = space.mmap(BASE, MIB)
        vma.pages.add_rate(0, 10, 5.0)
        space.clear_rates()
        assert not vma.pages.rate.any()
