"""SweepRunner: cache resume, pool execution, failure isolation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sweep.grid import SweepGrid
from repro.sweep.points import get_point_function, register_point_function
from repro.sweep.presets import fig3_grid
from repro.sweep.runner import SweepRunner


def _square(params):
    if params.get("explode"):
        raise ValueError("boom")
    return {"value": float(params["x"]) ** 2}


register_point_function("test_square", _square)


@pytest.fixture
def square_grid():
    return SweepGrid.from_axes("test_square", {"x": [1, 2, 3, 4]})


class TestSerialExecution:
    def test_results_in_grid_order(self, square_grid):
        report = SweepRunner(square_grid, jobs=1).run()
        assert [o.value["value"] for o in report.outcomes] == [1.0, 4.0, 9.0, 16.0]
        assert report.n_executed == 4
        assert report.n_cached == 0
        assert report.n_failed == 0

    def test_progress_called_once_per_point(self, square_grid):
        calls = []
        SweepRunner(
            square_grid, jobs=1, progress=lambda d, t, o: calls.append((d, t))
        ).run()
        assert calls == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_failed_point_isolated(self):
        grid = SweepGrid.from_points(
            "test_square", [{"x": 1}, {"x": 2, "explode": True}, {"x": 3}]
        )
        report = SweepRunner(grid, jobs=1).run()
        assert report.n_failed == 1
        assert report.n_executed == 2
        failure = report.failures()[0]
        assert "ValueError: boom" in failure.error
        assert [o.value["value"] for o in report.outcomes if o.ok] == [1.0, 9.0]

    def test_unknown_point_function_is_a_point_failure(self):
        grid = SweepGrid.from_points("no_such_fn", [{"x": 1}])
        report = SweepRunner(grid, jobs=1).run()
        assert report.n_failed == 1

    def test_jobs_validation(self, square_grid):
        with pytest.raises(ConfigError):
            SweepRunner(square_grid, jobs=0)


class TestCacheResume:
    def test_second_run_fully_cached(self, square_grid, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_VERSION_TAG", "resume-test")
        first = SweepRunner(square_grid, jobs=1, cache_dir=tmp_path).run()
        assert (first.n_cached, first.n_executed) == (0, 4)
        second = SweepRunner(square_grid, jobs=1, cache_dir=tmp_path).run()
        assert (second.n_cached, second.n_executed) == (4, 0)
        assert [o.value for o in second.outcomes] == [o.value for o in first.outcomes]

    def test_failed_points_are_not_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_VERSION_TAG", "fail-test")
        grid = SweepGrid.from_points(
            "test_square", [{"x": 1}, {"x": 2, "explode": True}]
        )
        SweepRunner(grid, jobs=1, cache_dir=tmp_path).run()
        again = SweepRunner(grid, jobs=1, cache_dir=tmp_path).run()
        assert again.n_cached == 1  # the good point resumed
        assert again.n_failed == 1  # the bad one re-ran (and failed again)

    def test_version_change_invalidates(self, square_grid, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_VERSION_TAG", "v1")
        SweepRunner(square_grid, jobs=1, cache_dir=tmp_path).run()
        monkeypatch.setenv("REPRO_SWEEP_VERSION_TAG", "v2")
        report = SweepRunner(square_grid, jobs=1, cache_dir=tmp_path).run()
        assert report.n_cached == 0
        assert report.n_executed == 4

    def test_no_cache_dir_disables_caching(self, square_grid):
        report = SweepRunner(square_grid, jobs=1, cache_dir=None).run()
        assert report.n_cached == 0


class TestPoolExecution:
    """Pool workers must produce exactly what the serial path produces.

    Uses the built-in ``score_curve`` function — registered at import
    time in every worker — rather than this module's test function,
    which spawn-started workers would not have."""

    def test_pool_matches_serial(self):
        grid = fig3_grid(n_points=11)
        serial = SweepRunner(grid, jobs=1).run()
        pooled = SweepRunner(grid, jobs=2).run()
        assert pooled.n_executed == 6
        assert pooled.n_failed == 0
        for a, b in zip(serial.outcomes, pooled.outcomes):
            assert a.point == b.point  # grid order preserved
            np.testing.assert_array_equal(a.value["scores"], b.value["scores"])

    def test_pool_resumes_from_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_VERSION_TAG", "pool-cache")
        grid = fig3_grid(n_points=11)
        SweepRunner(grid, jobs=2, cache_dir=tmp_path).run()
        second = SweepRunner(grid, jobs=2, cache_dir=tmp_path).run()
        assert (second.n_cached, second.n_executed) == (6, 0)


class TestRegistry:
    def test_module_path_resolution(self):
        fn = get_point_function("tests.test_sweep_runner:_square")
        assert fn({"x": 3})["value"] == 9.0

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            get_point_function("definitely_missing")
