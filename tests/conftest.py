"""Shared fixtures: small, fast simulation objects for unit tests.

Hypothesis profiles: ``ci`` (selected via ``HYPOTHESIS_PROFILE=ci``, as
the GitHub Actions workflow does) is derandomised so CI failures always
reproduce; the default ``dev`` profile keeps random exploration locally.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.monitor.attrs import MonitorAttrs
from repro.sanitize import set_default_enabled

# The conftest is an environment boundary like the CLI (DT204):
# DAOS_SANITIZE=1 runs the whole suite under the SimSanitizer runtime
# checks.  The tier-1 suite must pass byte-identically either way —
# the CI sanitizer job enforces exactly that.
if os.environ.get("DAOS_SANITIZE") == "1":
    set_default_enabled(True)

from repro.sim.clock import EventQueue
from repro.sim.costs import CostModel
from repro.sim.kernel import SimKernel
from repro.sim.machine import GuestSpec, get_instance
from repro.sim.swap import ZramDevice
from repro.units import MIB, MSEC, SEC

from tests.helpers import BASE, run_epochs  # noqa: F401  (re-exported)


@pytest.fixture
def small_guest():
    """A guest with 256 MiB of DRAM — big enough for unit scenarios,
    small enough that frame tables build instantly."""
    return GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=256 * MIB)


@pytest.fixture
def kernel(small_guest):
    return SimKernel(small_guest, swap=ZramDevice(64 * MIB), seed=7)


@pytest.fixture
def queue():
    return EventQueue()


@pytest.fixture
def fast_attrs():
    """Monitor attrs scaled 5x faster than the paper's for quick tests."""
    return MonitorAttrs(
        sampling_interval_us=1 * MSEC,
        aggregation_interval_us=20 * MSEC,
        regions_update_interval_us=200 * MSEC,
        min_nr_regions=10,
        max_nr_regions=200,
    )


@pytest.fixture
def rng():
    return np.random.default_rng(42)
