"""THP policy/khugepaged, LRU reclaimer, and the cost model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim.costs import CostModel
from repro.sim.lru import LruReclaimer
from repro.sim.pagetable import PAGES_PER_HUGE
from repro.sim.thp import Khugepaged, ThpPolicy
from repro.sim.vma import AddressSpace
from repro.units import MIB, SEC

BASE = 0x7F00_0000_0000


class TestThpPolicy:
    def test_modes(self):
        for mode in ("never", "always", "madvise"):
            assert ThpPolicy(mode=mode).mode == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            ThpPolicy(mode="sometimes")

    def test_threshold_bounds(self):
        with pytest.raises(ConfigError):
            ThpPolicy(min_present_pages=0)
        with pytest.raises(ConfigError):
            ThpPolicy(min_present_pages=PAGES_PER_HUGE + 1)


class TestKhugepaged:
    def _space_with_sparse_chunk(self, present_pages):
        space = AddressSpace()
        vma = space.mmap(BASE, 4 * MIB)  # 2 chunks
        vma.pages.touch_range(0, present_pages, now=1)
        return space, vma

    def test_never_mode_is_noop(self):
        space, _ = self._space_with_sparse_chunk(100)
        daemon = Khugepaged(space, ThpPolicy(mode="never"))
        assert daemon.scan(now=2)["promotions"] == 0

    def test_collapse_above_threshold(self):
        space, vma = self._space_with_sparse_chunk(100)
        daemon = Khugepaged(space, ThpPolicy(mode="always", min_present_pages=64))
        result = daemon.scan(now=2)
        assert result["promotions"] == 1
        assert result["bloat_pages"] == PAGES_PER_HUGE - 100
        assert vma.pages.chunk_huge[0]

    def test_below_threshold_not_collapsed(self):
        space, vma = self._space_with_sparse_chunk(10)
        daemon = Khugepaged(space, ThpPolicy(mode="always", min_present_pages=64))
        assert daemon.scan(now=2)["promotions"] == 0
        assert not vma.pages.chunk_huge.any()

    def test_scan_is_idempotent(self):
        space, _ = self._space_with_sparse_chunk(100)
        daemon = Khugepaged(space, ThpPolicy(mode="always"))
        daemon.scan(now=2)
        assert daemon.scan(now=3)["promotions"] == 0

    def test_lifetime_counters(self):
        space, _ = self._space_with_sparse_chunk(600)  # spans 2 chunks
        daemon = Khugepaged(space, ThpPolicy(mode="always", min_present_pages=64))
        daemon.scan(now=2)
        assert daemon.total_promotions == 2


class TestLru:
    def _space(self):
        space = AddressSpace()
        vma = space.mmap(BASE, 4 * MIB)
        return space, vma

    @staticmethod
    def _touch(vma, lo, hi, now):
        """Touch pages and assign frames (pages without frames are
        mid-fault and not evictable)."""
        vma.pages.touch_range(lo, hi, now=now)
        vma.pages.frame[lo:hi] = np.arange(lo, hi)

    def test_selects_least_recently_touched(self):
        space, vma = self._space()
        self._touch(vma, 0, 10, now=100 * SEC)
        self._touch(vma, 10, 20, now=50 * SEC)  # an older scan bucket
        lru = LruReclaimer(space)
        victims = lru.select_victims(10)
        (victim_vma, idx), = victims
        assert victim_vma is vma
        assert sorted(idx) == list(range(10, 20))

    def test_ordering_is_approximate_within_scan_interval(self):
        """Timestamps inside one scan interval are indistinguishable —
        the imprecision LRU_PRIO/LRU_DEPRIO exist to fix."""
        import numpy as np
        from repro.sim.lru import LRU_SCAN_INTERVAL_US

        space, vma = self._space()
        self._touch(vma, 0, 100, now=10 * SEC)
        self._touch(vma, 100, 200, now=10 * SEC + LRU_SCAN_INTERVAL_US // 2)
        lru = LruReclaimer(space)
        picks = set()
        for seed in range(5):
            victims = lru.select_victims(50, rng=np.random.default_rng(seed))
            (_, idx), = victims
            picks.add(tuple(sorted(idx)))
        # Different seeds pick different victims from the shared bucket.
        assert len(picks) > 1

    def test_caps_at_available(self):
        space, vma = self._space()
        self._touch(vma, 0, 5, now=1)
        lru = LruReclaimer(space)
        victims = lru.select_victims(100)
        assert sum(idx.size for _, idx in victims) == 5

    def test_zero_request(self):
        space, _ = self._space()
        assert LruReclaimer(space).select_victims(0) == []

    def test_huge_pages_not_evictable(self):
        space, vma = self._space()
        self._touch(vma, 0, PAGES_PER_HUGE, now=1)
        vma.pages.promote_chunks(np.array([0]), now=2)
        victims = LruReclaimer(space).select_victims(100)
        assert victims == []

    def test_list_sizes(self):
        space, vma = self._space()
        self._touch(vma, 0, 10, now=1 * SEC)
        self._touch(vma, 10, 30, now=20 * SEC)
        lru = LruReclaimer(space, activation_window_us=10 * SEC)
        active, inactive = lru.list_sizes(now=25 * SEC)
        assert active == 20
        assert inactive == 10

    def test_invalid_window_rejected(self):
        space, _ = self._space()
        with pytest.raises(ConfigError):
            LruReclaimer(space, activation_window_us=0)


class TestCostModel:
    def test_touch_cost_no_huge(self):
        costs = CostModel(dram_cost_us=0.1, tlb_walk_share=0.3)
        assert costs.touch_cost_us(100, 0.0) == pytest.approx(10.0)

    def test_touch_cost_all_huge(self):
        costs = CostModel(dram_cost_us=0.1, tlb_walk_share=0.3)
        assert costs.touch_cost_us(100, 1.0) == pytest.approx(7.0)

    def test_touch_cost_mixed(self):
        costs = CostModel(dram_cost_us=0.1, tlb_walk_share=0.3)
        mixed = costs.touch_cost_us(100, 0.5)
        assert costs.touch_cost_us(100, 1.0) < mixed < costs.touch_cost_us(100, 0.0)

    def test_tlb_scale_amplifies_discount(self):
        costs = CostModel(dram_cost_us=0.1, tlb_walk_share=0.3)
        assert costs.touch_cost_us(100, 1.0, tlb_scale=2.0) == pytest.approx(4.0)

    def test_tlb_scale_capped(self):
        costs = CostModel(dram_cost_us=0.1, tlb_walk_share=0.3)
        # 0.3 * 10 would be a 300% discount; capped at 95%.
        assert costs.touch_cost_us(100, 1.0, tlb_scale=10.0) == pytest.approx(0.5)

    def test_bad_huge_fraction_rejected(self):
        with pytest.raises(ConfigError):
            CostModel().touch_cost_us(1, 1.5)

    def test_negative_tlb_scale_rejected(self):
        with pytest.raises(ConfigError):
            CostModel().touch_cost_us(1, 0.5, tlb_scale=-1)

    def test_monitor_costs(self):
        costs = CostModel(pte_check_us=0.1, monitor_interference=1.0)
        assert costs.monitor_check_cost_us(1000) == pytest.approx(100.0)
        assert costs.interference_us(100.0) == pytest.approx(100.0)

    def test_field_validation(self):
        with pytest.raises(ConfigError):
            CostModel(dram_cost_us=-1)
        with pytest.raises(ConfigError):
            CostModel(tlb_walk_share=1.0)
        with pytest.raises(ConfigError):
            CostModel(monitor_interference=1.5)
