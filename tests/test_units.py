"""Units: size/time/percent parsing and formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParseError
from repro.units import (
    GIB,
    KIB,
    MIB,
    MINUTE,
    MSEC,
    SEC,
    TIB,
    UNLIMITED,
    decode_raw_count,
    format_size,
    format_time,
    parse_percent,
    parse_size,
    parse_time,
)


class TestParseSize:
    def test_bare_bytes(self):
        assert parse_size("4096") == 4096

    def test_kib(self):
        assert parse_size("4K") == 4 * KIB

    def test_kb_alias(self):
        assert parse_size("4KB") == 4 * KIB

    def test_mib(self):
        assert parse_size("2MB") == 2 * MIB

    def test_mib_suffix(self):
        assert parse_size("2MiB") == 2 * MIB

    def test_gib(self):
        assert parse_size("1G") == GIB

    def test_tib(self):
        assert parse_size("3TiB") == 3 * TIB

    def test_fractional(self):
        assert parse_size("1.5K") == 1536

    def test_min_keyword(self):
        assert parse_size("min") == 0

    def test_max_keyword(self):
        assert parse_size("max") == UNLIMITED

    def test_keywords_case_insensitive(self):
        assert parse_size("MAX") == UNLIMITED
        assert parse_size("Min") == 0

    def test_whitespace_tolerated(self):
        assert parse_size("  2MB ") == 2 * MIB

    def test_fractional_bytes_rounded(self):
        assert parse_size("1.0001K") == 1024

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_size("two megabytes")

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ParseError):
            parse_size("4Q")

    def test_non_string_rejected(self):
        with pytest.raises(ParseError):
            parse_size(4096)


class TestParseTime:
    def test_us(self):
        assert parse_time("100us") == 100

    def test_ms(self):
        assert parse_time("5ms") == 5 * MSEC

    def test_seconds(self):
        assert parse_time("7s") == 7 * SEC

    def test_minutes(self):
        assert parse_time("2m") == 2 * MINUTE

    def test_hours(self):
        assert parse_time("1h") == 3600 * SEC

    def test_fractional_seconds(self):
        assert parse_time("1.5s") == 1_500_000

    def test_min_max_keywords(self):
        assert parse_time("min") == 0
        assert parse_time("max") == UNLIMITED

    def test_bare_number_rejected(self):
        with pytest.raises(ParseError):
            parse_time("100")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_time("soon")


class TestParsePercent:
    def test_percentage(self):
        assert parse_percent("80%") == pytest.approx(0.8)

    def test_zero(self):
        assert parse_percent("0%") == 0.0

    def test_hundred(self):
        assert parse_percent("100%") == 1.0

    def test_min_max(self):
        assert parse_percent("min") == 0.0
        assert parse_percent("max") == 1.0

    def test_raw_count_encoded_negative(self):
        encoded = parse_percent("5")
        assert encoded < 0
        assert decode_raw_count(encoded) == 5

    def test_raw_zero(self):
        assert decode_raw_count(parse_percent("0")) == 0

    def test_over_hundred_rejected(self):
        with pytest.raises(ParseError):
            parse_percent("120%")

    def test_negative_rejected(self):
        with pytest.raises(ParseError):
            parse_percent("-5")

    def test_fractional_count_rejected(self):
        with pytest.raises(ParseError):
            parse_percent("2.5")

    def test_decode_fraction_rejected(self):
        with pytest.raises(ParseError):
            decode_raw_count(0.8)


class TestFormat:
    def test_format_size_exact(self):
        assert format_size(2 * MIB) == "2MiB"
        assert format_size(3 * GIB) == "3GiB"
        assert format_size(512) == "512B"

    def test_format_size_unlimited(self):
        assert format_size(UNLIMITED) == "max"

    def test_format_size_inexact(self):
        assert format_size(1536 * KIB + 1) .endswith("MiB")

    def test_format_size_negative_rejected(self):
        with pytest.raises(ParseError):
            format_size(-1)

    def test_format_time_exact(self):
        assert format_time(5 * SEC) == "5s"
        assert format_time(2 * MINUTE) == "2m"
        assert format_time(100) == "100us"

    def test_format_time_unlimited(self):
        assert format_time(UNLIMITED) == "max"

    def test_format_time_negative_rejected(self):
        with pytest.raises(ParseError):
            format_time(-5)


class TestRoundTrips:
    @given(st.integers(min_value=0, max_value=10 * TIB))
    def test_size_roundtrip_close(self, nbytes):
        # Human formatting may round; the roundtrip stays within 1%.
        parsed = parse_size(format_size(nbytes))
        assert abs(parsed - nbytes) <= max(1, nbytes) * 0.01

    @given(
        st.integers(min_value=0, max_value=40).flatmap(
            lambda e: st.sampled_from([KIB, MIB, GIB]).map(lambda u: e * u)
        )
    )
    def test_exact_size_roundtrip(self, nbytes):
        assert parse_size(format_size(nbytes)) == nbytes

    @given(
        st.integers(min_value=0, max_value=10_000).flatmap(
            lambda n: st.sampled_from([1, MSEC, SEC, MINUTE]).map(lambda u: n * u)
        )
    )
    def test_time_roundtrip(self, usecs):
        assert parse_time(format_time(usecs)) == usecs

    @given(st.integers(min_value=0, max_value=100))
    def test_percent_roundtrip(self, pct):
        assert parse_percent(f"{pct}%") == pytest.approx(pct / 100.0)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_raw_count_roundtrip(self, count):
        assert decode_raw_count(parse_percent(str(count))) == count
