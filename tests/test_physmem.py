"""Physical frame table and reverse map."""

import numpy as np
import pytest

from repro.errors import AddressSpaceError, ConfigError
from repro.sim.pagetable import PAGE_SIZE
from repro.sim.physmem import FrameTable
from repro.units import MIB


@pytest.fixture
def frames():
    return FrameTable(4 * MIB)  # 1024 frames


class TestAllocate:
    def test_sequential_from_zero(self, frames):
        got = frames.allocate(4, vma_id=0, page_idx=np.arange(4))
        assert list(got) == [0, 1, 2, 3]

    def test_counts(self, frames):
        frames.allocate(10, 0, np.arange(10))
        assert frames.allocated == 10
        assert frames.free_frames() == frames.n_frames - 10

    def test_zero_allocation(self, frames):
        assert frames.allocate(0, 0, np.empty(0)).size == 0

    def test_exhaustion_raises(self, frames):
        frames.allocate(frames.n_frames, 0, np.arange(frames.n_frames))
        with pytest.raises(AddressSpaceError):
            frames.allocate(1, 0, np.array([0]))

    def test_peak_tracking(self, frames):
        frames.allocate(100, 0, np.arange(100))
        got = frames.allocate(50, 0, np.arange(50))
        frames.release(got)
        assert frames.peak_allocated == 150
        assert frames.allocated == 100


class TestRelease:
    def test_release_recycles(self, frames):
        got = frames.allocate(4, 0, np.arange(4))
        frames.release(got)
        again = frames.allocate(4, 0, np.arange(4))
        assert sorted(again) == [0, 1, 2, 3]

    def test_double_free_rejected(self, frames):
        got = frames.allocate(4, 0, np.arange(4))
        frames.release(got)
        with pytest.raises(AddressSpaceError):
            frames.release(got)

    def test_release_empty_is_noop(self, frames):
        frames.release(np.empty(0, dtype=np.int64))
        assert frames.allocated == 0

    def test_interleaved_alloc_release(self, frames):
        a = frames.allocate(8, 0, np.arange(8))
        frames.release(a[:4])
        b = frames.allocate(6, 1, np.arange(6))
        assert frames.allocated == 10
        # No frame is handed out twice while allocated.
        assert len(set(a[4:]) & set(b)) == 0


class TestRmap:
    def test_owners(self, frames):
        frames.allocate(3, vma_id=7, page_idx=np.array([10, 11, 12]))
        vma_ids, pages = frames.owners(np.array([0, 1, 2]))
        assert list(vma_ids) == [7, 7, 7]
        assert list(pages) == [10, 11, 12]

    def test_free_frames_have_no_owner(self, frames):
        vma_ids, pages = frames.owners(np.array([100]))
        assert vma_ids[0] == -1
        assert pages[0] == -1

    def test_release_clears_owner(self, frames):
        got = frames.allocate(1, 3, np.array([5]))
        frames.release(got)
        vma_ids, _ = frames.owners(got)
        assert vma_ids[0] == -1

    def test_out_of_range_rejected(self, frames):
        with pytest.raises(AddressSpaceError):
            frames.owners(np.array([frames.n_frames]))
        with pytest.raises(AddressSpaceError):
            frames.owners(np.array([-1]))


class TestSpan:
    def test_span_bytes(self, frames):
        assert frames.span_bytes() == 4 * MIB

    def test_minimum_capacity(self):
        with pytest.raises(ConfigError):
            FrameTable(PAGE_SIZE - 1)
        assert FrameTable(PAGE_SIZE).n_frames == 1
