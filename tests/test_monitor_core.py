"""DataAccessMonitor: the kdamond loop on the simulated kernel."""

import numpy as np
import pytest

from repro.errors import ConfigError, MonitorStateError
from repro.monitor.attrs import MonitorAttrs
from repro.monitor.core import DataAccessMonitor
from repro.monitor.overhead import measure_overhead, theoretical_bound_cpu_share
from repro.monitor.primitives import PhysicalPrimitive, VirtualPrimitive
from repro.sim.clock import EventQueue
from repro.units import MIB, MSEC, SEC

from tests.helpers import BASE, run_epochs


def make_monitor(kernel, attrs, seed=3, primitive_cls=VirtualPrimitive):
    return DataAccessMonitor(primitive_cls(kernel), attrs, seed=seed)


class TestAttrs:
    def test_paper_defaults(self):
        attrs = MonitorAttrs()
        assert attrs.sampling_interval_us == 5 * MSEC
        assert attrs.aggregation_interval_us == 100 * MSEC
        assert attrs.regions_update_interval_us == 1 * SEC
        assert attrs.min_nr_regions == 10
        assert attrs.max_nr_regions == 1000

    def test_max_nr_accesses(self):
        assert MonitorAttrs().max_nr_accesses == 20

    def test_age_interval_conversion(self):
        attrs = MonitorAttrs()
        assert attrs.age_intervals(5 * SEC) == 50
        assert attrs.age_intervals(99 * MSEC) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            MonitorAttrs(sampling_interval_us=0)
        with pytest.raises(ConfigError):
            MonitorAttrs(aggregation_interval_us=3 * MSEC, sampling_interval_us=5 * MSEC)
        with pytest.raises(ConfigError):
            MonitorAttrs(aggregation_interval_us=101 * MSEC)  # not a multiple
        with pytest.raises(ConfigError):
            MonitorAttrs(regions_update_interval_us=50 * MSEC)
        with pytest.raises(ConfigError):
            MonitorAttrs(min_nr_regions=2)
        with pytest.raises(ConfigError):
            MonitorAttrs(min_nr_regions=100, max_nr_regions=50)


class TestLifecycle:
    def test_init_regions_near_min(self, kernel, fast_attrs):
        kernel.mmap(BASE, 64 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.init_regions()
        assert (
            fast_attrs.min_nr_regions
            <= monitor.nr_regions()
            <= fast_attrs.min_nr_regions + 3
        )
        monitor.check_invariants()

    def test_double_start_rejected(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        with pytest.raises(MonitorStateError):
            monitor.start(queue)

    def test_stop_cancels_ticks(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        queue.run_for(100 * MSEC)
        checks = monitor.total_checks
        monitor.stop()
        queue.run_for(100 * MSEC)
        assert monitor.total_checks == checks


class TestRegionBounds:
    def test_region_count_always_within_bounds(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 256 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        counts = []
        monitor.register_raw_callback(lambda mon, now: counts.append(mon.nr_regions()))
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 32 * MIB, touches_per_page=1000)],
            n_epochs=20,
        )
        assert counts, "no aggregations happened"
        assert max(counts) <= fast_attrs.max_nr_regions
        # min bound holds after the first merge pass settles
        assert min(counts[2:]) >= fast_attrs.min_nr_regions / 2

    def test_invariants_hold_throughout(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        monitor.register_raw_callback(lambda mon, now: mon.check_invariants())
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 8 * MIB, touches_per_page=500)],
            n_epochs=15,
        )
        monitor.check_invariants()


class TestAccuracy:
    def test_hotspot_found(self, kernel, fast_attrs, queue):
        """A stable hot eighth of the mapping must surface as regions
        with high access counts covering roughly its size."""
        kernel.mmap(BASE, 64 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        snaps = []
        monitor.register_callback(lambda s: snaps.append(s))
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 8 * MIB, touches_per_page=2000)],
            n_epochs=30,
        )
        last = snaps[-1]
        hot_bytes = sum(
            r.size for r in last.regions if r.frequency(last.max_nr_accesses) > 0.5
        )
        assert 4 * MIB < hot_bytes < 16 * MIB

    def test_cold_memory_ages(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        snaps = []
        monitor.register_callback(lambda s: snaps.append(s))
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 4 * MIB, touches_per_page=2000)],
            n_epochs=30,
        )
        last = snaps[-1]
        cold = [r for r in last.regions if r.nr_accesses == 0 and r.start >= BASE + 8 * MIB]
        assert cold, "expected cold regions"
        assert max(r.age for r in cold) >= 20

    def test_hot_region_age_grows_when_stable(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 16 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        snaps = []
        monitor.register_callback(lambda s: snaps.append(s))
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 16 * MIB, touches_per_page=3000)],
            n_epochs=25,
        )
        last = snaps[-1]
        assert max(r.age for r in last.regions) >= 10

    def test_pattern_change_resets_age(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 16 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        # Phase 1: whole range hot for 20 epochs.
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 16 * MIB, touches_per_page=3000)],
            n_epochs=20,
        )
        age_before = max(r.age for r in monitor.regions)
        # Phase 2: everything goes cold.
        run_epochs(kernel, queue, [], n_epochs=3)
        ages_after = [r.age for r in monitor.regions]
        assert min(ages_after) < age_before

    def test_snapshot_frequency_normalisation(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 16 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        snaps = []
        monitor.register_callback(lambda s: snaps.append(s))
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 16 * MIB, touches_per_page=5000)],
            n_epochs=10,
        )
        last = snaps[-1]
        assert last.max_nr_accesses == fast_attrs.max_nr_accesses
        for region in last.regions:
            assert 0.0 <= region.frequency(last.max_nr_accesses) <= 1.0


class TestOverheadBound:
    def test_checks_bounded_by_max_regions(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 256 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 64 * MIB, touches_per_page=500)],
            n_epochs=20,
        )
        duration = queue.clock.now
        ticks = duration // fast_attrs.sampling_interval_us
        assert monitor.total_checks <= ticks * fast_attrs.max_nr_regions

    def test_overhead_report_within_bound(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 256 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 64 * MIB, touches_per_page=500)],
            n_epochs=10,
        )
        report = measure_overhead(
            queue.clock.now,
            kernel.metrics.monitor_checks,
            kernel.metrics.monitor_cpu_us,
            fast_attrs,
            kernel.costs,
        )
        assert report.within_bound
        assert 0.0 < report.cpu_share <= report.bound_cpu_share

    def test_bound_formula(self, fast_attrs, kernel):
        bound = theoretical_bound_cpu_share(fast_attrs, kernel.costs)
        expected = (
            fast_attrs.max_nr_regions * kernel.costs.pte_check_us
            + kernel.costs.kdamond_wakeup_us
        ) / fast_attrs.sampling_interval_us
        assert bound == pytest.approx(expected)

    def test_overhead_independent_of_target_size(self, small_guest, fast_attrs):
        """The paper's headline property: monitoring 4x the memory does
        not cost (meaningfully) more checks."""
        from repro.sim.kernel import SimKernel
        from repro.sim.swap import ZramDevice

        checks = {}
        for size_mib in (32, 128):
            kernel = SimKernel(small_guest, swap=ZramDevice(64 * MIB), seed=5)
            queue = EventQueue()
            kernel.mmap(BASE, size_mib * MIB)
            monitor = make_monitor(kernel, fast_attrs, seed=5)
            monitor.start(queue)
            run_epochs(
                kernel,
                queue,
                [dict(start=BASE, end=BASE + size_mib * MIB, touches_per_page=200)],
                n_epochs=15,
            )
            checks[size_mib] = monitor.total_checks
        assert checks[128] < checks[32] * 2.5


class TestLayoutUpdates:
    def test_new_mapping_picked_up(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 16 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 4 * MIB, touches_per_page=500)],
            n_epochs=5,
        )
        kernel.mmap(BASE + 32 * MIB, 16 * MIB)
        queue.run_for(fast_attrs.regions_update_interval_us * 2)
        covered_end = max(r.end for r in monitor.regions)
        assert covered_end >= BASE + 32 * MIB

    def test_no_change_means_no_rederive(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 16 * MIB)
        monitor = make_monitor(kernel, fast_attrs)
        monitor.start(queue)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 4 * MIB, touches_per_page=500)],
            n_epochs=5,
        )
        regions_before = list(monitor.regions)
        monitor.regions_update_tick(queue.clock.now)
        assert monitor.regions == regions_before


class TestDeterminism:
    def test_same_seed_same_results(self, small_guest, fast_attrs):
        from repro.sim.kernel import SimKernel
        from repro.sim.swap import ZramDevice

        def run():
            kernel = SimKernel(small_guest, swap=ZramDevice(64 * MIB), seed=9)
            queue = EventQueue()
            kernel.mmap(BASE, 32 * MIB)
            monitor = make_monitor(kernel, fast_attrs, seed=11)
            monitor.start(queue)
            run_epochs(
                kernel,
                queue,
                [dict(start=BASE, end=BASE + 8 * MIB, touches_per_page=800)],
                n_epochs=12,
            )
            return [(r.start, r.end, r.nr_accesses, r.age) for r in monitor.regions]

        assert run() == run()


class TestPhysicalPrimitive:
    def test_paddr_monitor_sees_hot_frames(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 32 * MIB)
        monitor = make_monitor(kernel, fast_attrs, primitive_cls=PhysicalPrimitive)
        monitor.start(queue)
        snaps = []
        monitor.register_callback(lambda s: snaps.append(s))
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 8 * MIB, touches_per_page=2000)],
            n_epochs=25,
        )
        last = snaps[-1]
        hot = sum(r.size for r in last.regions if r.frequency(last.max_nr_accesses) > 0.5)
        assert hot > 2 * MIB

    def test_paddr_target_is_whole_guest_memory(self, kernel, fast_attrs):
        primitive = PhysicalPrimitive(kernel)
        (start, end), = primitive.target_ranges()
        assert start == 0
        assert end == kernel.guest.dram_bytes
