"""The perf subsystem: profiler, ``daos perf`` verb, hot-path counters.

The profiling harness rides the trace bus — it must never change what a
run does, and a seeded report must be reproducible except for the
explicitly ``volatile`` wall-clock block.
"""

import json

from repro.cli import build_parser, main
from repro.perf import PerfProfiler, profile_run
from repro.sim.costs import CostModel
from repro.trace import AccessSampled, EpochEnd, ThpPromotion, TraceBus, TuneStep

WORKLOAD = "parsec3/swaptions"
ARGS = {"config": "rec", "seed": 5, "time_scale": 0.02}


class TestPerfProfiler:
    def test_layers_and_ops(self):
        bus = TraceBus(ring_capacity=0)
        profiler = PerfProfiler().attach(bus)
        bus.emit(AccessSampled(time_us=1, nr_regions=10, checked=10, hits=4))
        bus.emit(AccessSampled(time_us=2, nr_regions=10, checked=10, hits=2))
        bus.emit(
            ThpPromotion(time_us=3, promoted_chunks=2, bloat_pages=0, swapped_in_pages=0)
        )
        bus.emit(
            TuneStep(
                time_us=4, phase="global", param=1.0, score=0.5, runtime_us=9,
                rss_bytes=0.0,
            )
        )
        report = profiler.report()
        assert report["layers"]["monitor"]["events"] == 2
        assert report["layers"]["monitor"]["ops"] == 20
        assert report["layers"]["kernel"]["events"] == 1
        assert report["layers"]["tuner"]["est_cost_us"] == 9.0
        assert report["total_events"] == 4

    def test_monitor_cost_uses_the_cost_model(self):
        costs = CostModel()
        bus = TraceBus(ring_capacity=0)
        profiler = PerfProfiler(costs=costs).attach(bus)
        bus.emit(AccessSampled(time_us=1, nr_regions=7, checked=7, hits=0))
        expected = costs.monitor_check_cost_us(7, wakeups=1)
        assert profiler.report()["layers"]["monitor"]["est_cost_us"] == expected

    def test_epoch_end_fault_costs_use_deltas(self):
        """EpochEnd carries lifetime fault counters; the profiler must
        charge only the per-epoch increments."""
        costs = CostModel()
        bus = TraceBus(ring_capacity=0)
        profiler = PerfProfiler(costs=costs).attach(bus)
        common = dict(compute_us=0.0, rss_bytes=0, free_frames=0)
        bus.emit(
            EpochEnd(time_us=1, epoch_end_us=1, major_faults=2, minor_faults=10, **common)
        )
        bus.emit(
            EpochEnd(time_us=2, epoch_end_us=2, major_faults=3, minor_faults=15, **common)
        )
        cost = profiler.report()["layers"]["kernel"]["est_cost_us"]
        expected = costs.major_fault_overhead_us(3) + costs.minor_fault_cost_us(15)
        assert abs(cost - expected) < 1e-6


class TestProfileRun:
    def test_report_is_deterministic_modulo_volatile(self):
        report_a, result_a = profile_run(WORKLOAD, **ARGS)
        report_b, result_b = profile_run(WORKLOAD, **ARGS)
        report_a.pop("volatile")
        report_b.pop("volatile")
        assert report_a == report_b
        assert result_a.runtime_us == result_b.runtime_us

    def test_profiling_does_not_perturb_the_run(self):
        """Attaching the profiler must not change the experiment."""
        from repro.runner.experiment import run_experiment

        _, profiled = profile_run(WORKLOAD, **ARGS)
        bare = run_experiment(WORKLOAD, machine="i3.metal", **ARGS)
        assert profiled.runtime_us == bare.runtime_us
        assert profiled.monitor_checks == bare.monitor_checks


class TestPerfVerb:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["perf", WORKLOAD])
        assert args.command == "perf"
        assert args.config == "rec"
        assert args.output is None

    def test_emits_json_breakdown(self, capsys):
        rc = main(["--time-scale", "0.02", "--seed", "5", "perf", WORKLOAD])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workload"] == WORKLOAD
        assert "monitor" in report["profile"]["layers"]
        assert report["profile"]["total_events"] > 0

    def test_output_file(self, tmp_path, capsys):
        out = tmp_path / "perf.json"
        rc = main(["--time-scale", "0.02", "perf", WORKLOAD, "-o", str(out)])
        assert rc == 0
        assert "written to" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["seed"] == 0
