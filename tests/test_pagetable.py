"""PageTable: touches, faults, rates, accessed-bit model, THP chunks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AddressSpaceError, ConfigError
from repro.sim.pagetable import HUGE_PAGE_SIZE, PAGE_SIZE, PAGES_PER_HUGE, PageTable


@pytest.fixture
def pt():
    """Four full huge chunks worth of pages."""
    return PageTable(4 * PAGES_PER_HUGE)


class TestTouchRange:
    def test_first_touch_is_minor_fault(self, pt):
        result = pt.touch_range(0, 10, now=100)
        assert list(result["minor"]) == list(range(10))
        assert result["major"].size == 0
        assert pt.present[:10].all()

    def test_second_touch_no_fault(self, pt):
        pt.touch_range(0, 10, now=100)
        result = pt.touch_range(0, 10, now=200)
        assert result["minor"].size == 0
        assert result["major"].size == 0

    def test_swapped_touch_is_major_fault(self, pt):
        pt.touch_range(0, 10, now=100)
        pt.pageout_range(0, 10)
        result = pt.touch_range(0, 10, now=200)
        assert result["major"].size == 10
        assert pt.present[:10].all()
        assert not pt.swapped[:10].any()

    def test_last_touch_updated(self, pt):
        pt.touch_range(0, 5, now=123)
        assert (pt.last_touch[:5] == 123).all()

    def test_touch_count_accumulates(self, pt):
        pt.touch_range(0, 5, now=1, touches=3)
        pt.touch_range(0, 5, now=2, touches=2)
        assert (pt.touch_count[:5] == 5).all()

    def test_stride_touches_every_nth(self, pt):
        result = pt.touch_range(0, 16, now=1, stride=4)
        assert list(result["touched"]) == [0, 4, 8, 12]
        assert pt.present[[0, 4, 8, 12]].all()
        assert not pt.present[[1, 2, 3, 5]].any()

    def test_fraction_requires_rng(self, pt):
        with pytest.raises(ConfigError):
            pt.touch_range(0, 16, now=1, fraction=0.5)

    def test_fraction_subset(self, pt):
        rng = np.random.default_rng(0)
        result = pt.touch_range(0, 1000, now=1, fraction=0.5, rng=rng)
        assert 350 < result["touched"].size < 650

    def test_fraction_zero_is_noop(self, pt):
        result = pt.touch_range(0, 16, now=1, fraction=0.0)
        assert result["touched"].size == 0
        assert not pt.present.any()

    def test_out_of_range_rejected(self, pt):
        with pytest.raises(AddressSpaceError):
            pt.touch_range(0, pt.n_pages + 1, now=1)

    def test_bad_fraction_rejected(self, pt):
        with pytest.raises(ConfigError):
            pt.touch_range(0, 10, now=1, fraction=1.5)

    def test_bad_stride_rejected(self, pt):
        with pytest.raises(ConfigError):
            pt.touch_range(0, 10, now=1, stride=0)


class TestRates:
    def test_set_rate_overwrites(self, pt):
        pt.set_rate(0, 10, 100.0)
        pt.set_rate(0, 10, 40.0)
        assert (pt.rate[:10] == 40.0).all()

    def test_add_rate(self, pt):
        pt.add_rate(0, 10, 100.0)
        assert (pt.rate[:10] == 100.0).all()
        assert (pt.rate[10:] == 0.0).all()

    def test_add_rate_accumulates(self, pt):
        pt.add_rate(0, 10, 100.0)
        pt.add_rate(5, 15, 50.0)
        assert pt.rate[7] == 150.0
        assert pt.rate[12] == 50.0

    def test_add_rate_stride(self, pt):
        pt.add_rate(0, 8, 10.0, stride=2)
        assert pt.rate[0] == 10.0
        assert pt.rate[1] == 0.0

    def test_clear_rates(self, pt):
        pt.add_rate(0, 10, 100.0)
        pt.clear_rates()
        assert not pt.rate.any()

    def test_negative_rate_rejected(self, pt):
        with pytest.raises(ConfigError):
            pt.add_rate(0, 10, -1.0)


class TestAccessProbability:
    def test_zero_rate_never_accessed(self, pt):
        probs = pt.access_probability(np.arange(10), window_us=5000)
        assert (probs == 0.0).all()

    def test_high_rate_nearly_certain(self, pt):
        pt.add_rate(0, 10, 10000.0)
        probs = pt.access_probability(np.arange(10), window_us=5000)
        assert (probs > 0.99).all()

    def test_poisson_formula(self, pt):
        pt.add_rate(0, 1, 20.0)  # 20 touches/s over a 5 ms window
        prob = pt.access_probability(np.array([0]), window_us=5000)[0]
        assert prob == pytest.approx(1.0 - np.exp(-0.1))

    def test_longer_window_higher_probability(self, pt):
        pt.add_rate(0, 1, 20.0)
        p_short = pt.access_probability(np.array([0]), 1000)[0]
        p_long = pt.access_probability(np.array([0]), 50000)[0]
        assert p_long > p_short

    def test_huge_chunk_shares_accessed_bit(self, pt):
        # Touch only page 0 at a high rate, then promote chunk 0: the
        # PMD accessed bit makes every page of the chunk look accessed.
        pt.touch_range(0, 1, now=1)
        pt.add_rate(0, 1, 5000.0)
        pt.promote_chunks(np.array([0]), now=2)
        cold_page_in_chunk = PAGES_PER_HUGE - 1
        prob = pt.access_probability(np.array([cold_page_in_chunk]), 5000)[0]
        assert prob > 0.9

    def test_non_huge_chunk_keeps_page_granularity(self, pt):
        pt.add_rate(0, 1, 5000.0)
        prob = pt.access_probability(np.array([1]), 5000)[0]
        assert prob == 0.0


class TestPageout:
    def test_pageout_unmaps_present(self, pt):
        pt.touch_range(0, 100, now=1)
        idx, n_dirty = pt.pageout_range(0, 100)
        assert idx.size == 100
        assert n_dirty == 0  # nothing was written
        assert not pt.present[:100].any()
        assert pt.swapped[:100].all()

    def test_pageout_skips_not_present(self, pt):
        idx, _ = pt.pageout_range(0, 100)
        assert idx.size == 0

    def test_pageout_skips_huge_chunks(self, pt):
        pt.touch_range(0, PAGES_PER_HUGE, now=1)
        pt.promote_chunks(np.array([0]), now=2)
        idx, _ = pt.pageout_range(0, PAGES_PER_HUGE)
        assert idx.size == 0

    def test_swap_in_range(self, pt):
        pt.touch_range(0, 50, now=1)
        pt.pageout_range(0, 50)
        idx = pt.swap_in_range(0, 100)
        assert idx.size == 50
        assert pt.present[:50].all()


class TestHugeChunks:
    def test_chunk_count_floors(self):
        pt = PageTable(PAGES_PER_HUGE + 7)
        assert pt.n_chunks == 1

    def test_promote_makes_whole_chunk_resident(self, pt):
        pt.touch_range(0, 10, now=1)
        chunks, new_idx, n_swapped = pt.promote_chunks(np.array([0]), now=2)
        assert list(chunks) == [0]
        assert new_idx.size == PAGES_PER_HUGE - 10
        assert n_swapped == 0
        assert pt.present[:PAGES_PER_HUGE].all()

    def test_promote_already_huge_is_noop(self, pt):
        pt.touch_range(0, 10, now=1)
        pt.promote_chunks(np.array([0]), now=2)
        chunks, new_idx, _ = pt.promote_chunks(np.array([0]), now=3)
        assert chunks.size == 0 and new_idx.size == 0

    def test_promote_counts_swapped(self, pt):
        pt.touch_range(0, 10, now=1)
        pt.pageout_range(0, 10)
        _, _, n_swapped = pt.promote_chunks(np.array([0]), now=2)
        assert n_swapped == 10
        assert not pt.swapped[:PAGES_PER_HUGE].any()

    def test_bloat_flag_set_only_for_fresh_pages(self, pt):
        pt.touch_range(0, 10, now=1)
        pt.promote_chunks(np.array([0]), now=2)
        assert not pt.bloat[:10].any()
        assert pt.bloat[10:PAGES_PER_HUGE].all()

    def test_touch_clears_bloat(self, pt):
        pt.touch_range(0, 10, now=1)
        pt.promote_chunks(np.array([0]), now=2)
        pt.touch_range(10, 20, now=3)
        assert not pt.bloat[10:20].any()

    def test_demote_frees_only_bloat(self, pt):
        pt.touch_range(0, 10, now=1)
        pt.promote_chunks(np.array([0]), now=2)
        pt.touch_range(10, 20, now=3)  # now real data
        chunks, freed = pt.demote_chunks(np.array([0]), now=4)
        assert list(chunks) == [0]
        assert freed.size == PAGES_PER_HUGE - 20
        assert pt.present[:20].all()
        assert not pt.present[20:PAGES_PER_HUGE].any()

    def test_demote_non_huge_is_noop(self, pt):
        chunks, freed = pt.demote_chunks(np.array([0]), now=1)
        assert chunks.size == 0 and freed.size == 0

    def test_promote_demote_roundtrip_preserves_data_pages(self, pt):
        pt.touch_range(3, 7, now=1)
        pt.promote_chunks(np.array([0]), now=2)
        pt.demote_chunks(np.array([0]), now=3)
        assert pt.present[3:7].all()
        assert pt.resident_pages() == 4

    def test_chunk_out_of_range_rejected(self, pt):
        with pytest.raises(AddressSpaceError):
            pt.promote_chunks(np.array([99]), now=1)

    def test_huge_mask(self, pt):
        pt.touch_range(0, 1, now=1)
        pt.promote_chunks(np.array([0]), now=2)
        mask = pt.huge_mask(np.array([0, PAGES_PER_HUGE - 1, PAGES_PER_HUGE]))
        assert list(mask) == [True, True, False]

    def test_huge_mask_tail_pages(self):
        pt = PageTable(PAGES_PER_HUGE + 7)
        pt.touch_range(0, 1, now=1)
        pt.promote_chunks(np.array([0]), now=2)
        mask = pt.huge_mask(np.array([PAGES_PER_HUGE + 3]))
        assert not mask[0]


class TestWriteChannel:
    """The write/dirty channel (the paper's stated future work)."""

    def test_writes_set_dirty(self, pt):
        pt.touch_range(0, 10, now=1, write_fraction=1.0)
        assert pt.dirty[:10].all()

    def test_reads_stay_clean(self, pt):
        pt.touch_range(0, 10, now=1, write_fraction=0.0)
        assert not pt.dirty.any()

    def test_partial_writes(self, pt):
        rng = np.random.default_rng(0)
        pt.touch_range(0, 1000, now=1, write_fraction=0.5, rng=rng)
        n_dirty = int(np.count_nonzero(pt.dirty[:1000]))
        assert 350 < n_dirty < 650

    def test_partial_writes_require_rng(self, pt):
        with pytest.raises(ConfigError):
            pt.touch_range(0, 10, now=1, write_fraction=0.5)

    def test_pageout_counts_and_cleans_dirty(self, pt):
        pt.touch_range(0, 10, now=1, write_fraction=1.0)
        pt.touch_range(10, 20, now=1)
        idx, n_dirty = pt.pageout_range(0, 20)
        assert idx.size == 20
        assert n_dirty == 10
        assert not pt.dirty[:20].any()

    def test_write_probability_follows_write_rate(self, pt):
        pt.add_write_rate(0, 5, 10000.0)
        probs = pt.write_probability(np.arange(10), window_us=5000)
        assert (probs[:5] > 0.99).all()
        assert (probs[5:] == 0.0).all()

    def test_clear_rates_clears_write_rates(self, pt):
        pt.add_write_rate(0, 5, 100.0)
        pt.clear_rates()
        assert not pt.write_rate.any()

    def test_bad_write_fraction_rejected(self, pt):
        with pytest.raises(ConfigError):
            pt.touch_range(0, 10, now=1, write_fraction=1.5)


class TestAccounting:
    def test_resident_pages(self, pt):
        pt.touch_range(0, 33, now=1)
        assert pt.resident_pages() == 33

    def test_swapped_pages(self, pt):
        pt.touch_range(0, 33, now=1)
        pt.pageout_range(0, 10)
        assert pt.swapped_pages() == 10
        assert pt.resident_pages() == 23

    def test_huge_chunks_count(self, pt):
        pt.touch_range(0, 1, now=1)
        pt.promote_chunks(np.array([0]), now=2)
        assert pt.huge_chunks() == 1

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigError):
            PageTable(0)


class TestStateInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["touch", "pageout", "swapin", "promote", "demote"]),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=30,
        )
    )
    def test_present_and_swapped_disjoint(self, ops):
        """A page is never simultaneously resident and swapped, and
        huge-mapped chunks are always fully resident."""
        pt = PageTable(4 * PAGES_PER_HUGE)
        now = 0
        for op, chunk in ops:
            now += 1
            lo = chunk * PAGES_PER_HUGE
            hi = lo + PAGES_PER_HUGE
            if op == "touch":
                pt.touch_range(lo, hi, now=now, stride=3)
            elif op == "pageout":
                pt.pageout_range(lo, hi)
            elif op == "swapin":
                pt.swap_in_range(lo, hi)
            elif op == "promote":
                pt.promote_chunks(np.array([chunk]), now=now)
            elif op == "demote":
                pt.demote_chunks(np.array([chunk]), now=now)
            assert not (pt.present & pt.swapped).any()
            for c in range(pt.n_chunks):
                if pt.chunk_huge[c]:
                    assert pt.present[c * PAGES_PER_HUGE : (c + 1) * PAGES_PER_HUGE].all()
            # Bloat pages are always resident and never swapped.
            assert not (pt.bloat & ~pt.present).any()
