"""The ``daos`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_workloads_subcommand(self):
        args = build_parser().parse_args(["workloads"])
        assert args.command == "workloads"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "parsec3/freqmine"])
        assert args.config == "baseline"
        assert args.machine == "i3.metal"

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--machine", "z1d.metal", "--seed", "9", "--time-scale", "0.1",
             "run", "parsec3/freqmine", "-c", "prcl"]
        )
        assert args.machine == "z1d.metal"
        assert args.seed == 9
        assert args.time_scale == 0.1
        assert args.config == "prcl"

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "w", "-c", "warp"])

    def test_tune_samples(self):
        args = build_parser().parse_args(["tune", "parsec3/raytrace", "-n", "6"])
        assert args.samples == 6

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "parsec3/freqmine" in out
        assert "splash2x/ocean_ncp" in out

    def test_unknown_workload_is_clean_error(self, capsys):
        rc = main(["--time-scale", "0.05", "run", "parsec3/doom"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_run_baseline(self, capsys):
        rc = main(["--time-scale", "0.05", "run", "splash2x/volrend"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "runtime" in out
        assert "avg RSS" in out

    def test_run_prcl_prints_normalised(self, capsys):
        rc = main(["--time-scale", "0.1", "run", "splash2x/volrend", "-c", "prcl"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scheme" in out
        assert "S/volrend" in out

    def test_record_prints_heatmap(self, capsys):
        rc = main(["--time-scale", "0.1", "record", "splash2x/volrend"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "monitor:" in out
        assert "addr [" in out

    def test_wss(self, capsys):
        rc = main(["--time-scale", "0.1", "wss", "splash2x/volrend"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p50" in out

    def test_fleet_smoke(self, capsys, tmp_path):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        argv = ["fleet", "-n", "30", "--duration", "60", "--sanitize"]
        assert main(argv + ["--out", str(out_a)]) == 0
        assert main(argv + ["--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        out = capsys.readouterr().out
        assert "30 tenants" in out
        assert "digest" in out

    def test_fleet_sharded_smoke(self, capsys):
        rc = main(["fleet", "-n", "30", "--duration", "60", "--shards", "3"])
        assert rc == 0
        assert "3 pool(s)" in capsys.readouterr().out

    def test_tune_smoke(self, capsys):
        # Tiny scale: the tuned value is meaningless, but the whole
        # sample→fit→peak→report pipeline must run.
        rc = main(["--time-scale", "0.05", "tune", "splash2x/volrend", "-n", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best min_age" in out

    def test_schemes_from_file(self, capsys, tmp_path):
        scheme_file = tmp_path / "my.schemes"
        scheme_file.write_text("4K max min min 2s max pageout\n")
        rc = main(
            ["--time-scale", "0.1", "schemes", "splash2x/volrend", "-f", str(scheme_file)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pageout" in out
