"""Score-curve pattern classification (analysis.patterns)."""

import numpy as np
import pytest

from repro.analysis.patterns import PATTERN_NAMES, classify_score_pattern
from repro.errors import ConfigError

X = list(np.linspace(0.0, 1.0, 21))


def classify(ys):
    return classify_score_pattern(X, ys)[0]


class TestClassification:
    def test_monotonic_rise_is_1(self):
        assert classify([10 * x for x in X]) == 1

    def test_monotonic_fall_is_4(self):
        assert classify([-10 * x for x in X]) == 4

    def test_interior_peak_above_zero_is_2(self):
        ys = [10 * x if x < 0.5 else 10 * (1 - x) + 2 for x in X]
        assert classify(ys) == 2

    def test_interior_peak_below_zero_is_3(self):
        ys = [20 * x if x < 0.3 else 6 - 25 * (x - 0.3) for x in X]
        assert classify(ys) == 3

    def test_interior_valley_below_zero_is_5(self):
        ys = [-20 * x if x < 0.3 else -6 + 8 * (x - 0.3) for x in X]
        assert classify(ys) == 5

    def test_interior_valley_recovering_is_6(self):
        ys = [-20 * x if x < 0.3 else -6 + 30 * (x - 0.3) for x in X]
        assert classify(ys) == 6

    def test_flat_curve_is_monotonic(self):
        assert classify([0.0] * 21) in (1, 4)

    def test_noise_tolerated(self):
        rng = np.random.default_rng(0)
        base = [10 * x for x in X]
        noisy = [b + rng.normal(0, 0.3) for b in base]
        assert classify(noisy) == 1

    def test_all_six_names(self):
        assert set(PATTERN_NAMES) == set(range(1, 7))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigError):
            classify_score_pattern([0, 1], [0, 1])

    def test_non_increasing_x_rejected(self):
        with pytest.raises(ConfigError):
            classify_score_pattern([0, 2, 1, 3], [0, 0, 0, 0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            classify_score_pattern([0, 1, 2, 3], [0, 0, 0])
