"""The trace bus: dispatch, counters, ring, clocks, subscriber isolation."""

import logging

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError, ParseError
from repro.sim.clock import VirtualClock
from repro.trace import (
    EVENT_TYPES,
    AccessSampled,
    EpochEnd,
    EventCounter,
    FieldHistogram,
    JsonlTraceSink,
    ReclaimPass,
    TraceBus,
    TraceEvent,
    decode_event,
    encode_event,
    read_trace,
    validate_trace_file,
)

from tests.helpers import BASE, run_epochs  # noqa: F401


def sampled(t, **kw):
    defaults = dict(nr_regions=4, checked=4, hits=2)
    defaults.update(kw)
    return AccessSampled(time_us=t, **defaults)


def reclaim(t, **kw):
    defaults = dict(requested_pages=8, evicted_pages=8, written_back_pages=2, trigger="alloc")
    defaults.update(kw)
    return ReclaimPass(time_us=t, **defaults)


class TestDispatch:
    def test_typed_subscribe_receives_only_its_type(self):
        bus = TraceBus()
        got = []
        bus.subscribe(AccessSampled, got.append)
        bus.emit(sampled(0))
        bus.emit(reclaim(0))
        assert len(got) == 1 and isinstance(got[0], AccessSampled)

    def test_subscribe_all_receives_everything(self):
        bus = TraceBus()
        got = []
        bus.subscribe_all(got.append)
        bus.emit(sampled(0))
        bus.emit(reclaim(0))
        assert [type(e) for e in got] == [AccessSampled, ReclaimPass]

    def test_subscribe_base_type_means_all(self):
        bus = TraceBus()
        got = []
        bus.subscribe(TraceEvent, got.append)
        bus.emit(reclaim(0))
        assert got

    def test_unsubscribe(self):
        bus = TraceBus()
        got = []
        handler = bus.subscribe(AccessSampled, got.append)
        assert bus.has_subscribers
        assert bus.unsubscribe(handler)
        assert not bus.has_subscribers
        bus.emit(sampled(0))
        assert not got
        assert not bus.unsubscribe(handler)  # already gone

    def test_counts_and_times(self):
        bus = TraceBus()
        assert bus.first_time_us == -1 and bus.last_time_us == -1
        bus.advance_to(10)
        bus.emit(sampled(bus.now))
        bus.advance_to(30)
        bus.emit(reclaim(bus.now))
        bus.emit(sampled(bus.now))
        assert bus.n_events == 3
        assert bus.counts == {"AccessSampled": 2, "ReclaimPass": 1}
        assert (bus.first_time_us, bus.last_time_us) == (10, 30)
        summary = bus.summary()
        assert summary.n_events == 3
        assert summary.as_dict()["counts"] == {"AccessSampled": 2, "ReclaimPass": 1}

    def test_ring_is_bounded(self):
        bus = TraceBus(ring_capacity=3)
        for t in range(5):
            bus.advance_to(t)
            bus.emit(sampled(t))
        assert [e.time_us for e in bus.ring] == [2, 3, 4]

    def test_ring_disabled(self):
        bus = TraceBus(ring_capacity=0)
        bus.emit(sampled(0))
        assert bus.ring == ()
        assert bus.n_events == 1  # counting unaffected

    def test_negative_ring_capacity_rejected(self):
        with pytest.raises(ConfigError):
            TraceBus(ring_capacity=-1)

    def test_wants_tracks_consumers(self):
        bus = TraceBus(ring_capacity=0)
        assert not bus.wants(AccessSampled)
        handler = bus.subscribe(AccessSampled, lambda e: None)
        assert bus.wants(AccessSampled) and not bus.wants(ReclaimPass)
        bus.unsubscribe(handler)
        assert not bus.wants(AccessSampled)
        bus.subscribe_all(lambda e: None)
        assert bus.wants(ReclaimPass)
        assert TraceBus(ring_capacity=4).wants(ReclaimPass)  # ring retains

    def test_count_matches_emit_summary(self):
        """The fast path must move the counters exactly as emit would
        for an event stamped now — summaries are path-independent."""
        emitting, counting = TraceBus(ring_capacity=0), TraceBus(ring_capacity=0)
        for t in (5, 9, 9, 40):
            for bus in (emitting, counting):
                bus.advance_to(t)
            emitting.emit(sampled(emitting.now))
            counting.count(AccessSampled)
        assert counting.summary() == emitting.summary()

    def test_count_groups_matches_count(self):
        """Bulk grouped accounting equals count() called per occurrence,
        with the per-group split recorded on the side."""
        single, grouped = TraceBus(ring_capacity=0), TraceBus(ring_capacity=0)
        for bus in (single, grouped):
            bus.advance_to(7)
        for _ in range(5):
            single.count(AccessSampled)
        grouped.count_groups(AccessSampled, {"t0": 2, "t1": 3, "t2": 0})
        assert grouped.summary() == single.summary()
        assert grouped.group_counts == {"AccessSampled": {"t0": 2, "t1": 3}}
        grouped.count_groups(AccessSampled, {"t1": 1})
        assert grouped.group_counts["AccessSampled"]["t1"] == 4

    def test_count_groups_all_zero_is_a_no_op(self):
        bus = TraceBus(ring_capacity=0)
        bus.count_groups(AccessSampled, {"t0": 0})
        assert bus.n_events == 0 and bus.group_counts == {}

    def test_count_groups_rejects_negative(self):
        bus = TraceBus(ring_capacity=0)
        with pytest.raises(ConfigError):
            bus.count_groups(AccessSampled, {"t0": -1})


class TestSubscriberIsolation:
    def test_raising_subscriber_detached_and_reported_once(self, caplog):
        bus = TraceBus()
        calls = []

        def bad(event):
            calls.append(event)
            raise RuntimeError("boom")

        after = []
        bus.subscribe_all(bad)
        bus.subscribe_all(after.append)
        with caplog.at_level(logging.WARNING, logger="repro.trace"):
            bus.emit(sampled(0))
            bus.emit(sampled(1))
        # The bad subscriber saw exactly one event, then was detached.
        assert len(calls) == 1
        # The healthy subscriber saw both, including the one that raised.
        assert len(after) == 2
        # Reported once: one error record, one warning log line.
        assert len(bus.subscriber_errors) == 1
        assert "RuntimeError: boom" in bus.subscriber_errors[0][1]
        assert sum("detached" in r.message for r in caplog.records) == 1

    def test_typed_subscriber_errors_isolated_too(self):
        bus = TraceBus()

        def bad(event):
            raise ValueError("nope")

        bus.subscribe(AccessSampled, bad)
        bus.emit(sampled(0))  # must not raise
        bus.emit(sampled(1))
        assert len(bus.subscriber_errors) == 1


class TestClocks:
    def test_owned_clock_advance(self):
        bus = TraceBus()
        assert bus.owns_clock
        bus.advance_to(100)
        assert bus.now == 100
        bus.advance_to(50)  # never moves backwards
        assert bus.now == 100

    def test_adopted_clock_cannot_be_advanced(self):
        clock = VirtualClock()
        bus = TraceBus(clock)
        assert not bus.owns_clock
        with pytest.raises(ConfigError):
            bus.advance_to(10)

    def test_bind_clock_adopts(self):
        bus = TraceBus()
        clock = VirtualClock(start=5)
        bus.bind_clock(clock)
        assert bus.now == 5
        clock.advance_to(9)
        assert bus.now == 9

    def test_bind_behind_emitted_events_rejected(self):
        bus = TraceBus()
        bus.advance_to(100)
        bus.emit(sampled(bus.now))
        with pytest.raises(ConfigError):
            bus.bind_clock(VirtualClock(start=10))
        # Binding at or ahead of the stream is fine.
        bus.bind_clock(VirtualClock(start=100))


class TestAggregators:
    def test_event_counter_filtered(self):
        counter = EventCounter(accept=lambda e: e.time_us >= 10)
        counter(sampled(0))
        counter(sampled(10))
        counter(reclaim(20))
        assert counter.counts == {"AccessSampled": 1, "ReclaimPass": 1}
        assert counter.total == 2

    def test_field_histogram(self):
        hist = FieldHistogram("evicted_pages")
        for pages in (0, 1, 2, 3, 500):
            hist(reclaim(0, evicted_pages=pages))
        hist(sampled(0))  # no such field: ignored
        assert hist.n_values == 5
        assert hist.mean == pytest.approx(506 / 5)
        rendered = hist.render(width=10)
        assert "#" in rendered and rendered.count("\n") >= 2


class TestJsonl:
    def test_encode_is_canonical(self):
        line = encode_event(reclaim(7))
        assert line == (
            '{"ev":"ReclaimPass","evicted_pages":8,"requested_pages":8,'
            '"time_us":7,"trigger":"alloc","written_back_pages":2}'
        )

    def test_round_trip_every_registered_type(self):
        import json

        from repro.trace import event_payload

        for kind, cls in EVENT_TYPES.items():
            kwargs = {}
            for name, value in _example_values(cls).items():
                kwargs[name] = value
            event = cls(**kwargs)
            line = encode_event(event)
            again = decode_event(line)
            assert again == event, kind
            assert again.kind == kind
            # The compiled encoder must match the canonical-JSON
            # reference byte for byte.
            reference = json.dumps(
                {**event_payload(event), "ev": kind},
                sort_keys=True,
                separators=(",", ":"),
            )
            assert line == reference, kind

    def test_decode_rejects_unknown_kind(self):
        with pytest.raises(ParseError, match="unknown trace event kind"):
            decode_event('{"ev":"Nope","time_us":0}')

    def test_decode_rejects_missing_kind(self):
        with pytest.raises(ParseError, match="kind key"):
            decode_event('{"time_us":0}')

    def test_decode_rejects_extra_fields(self):
        with pytest.raises(ParseError, match="unknown field"):
            decode_event('{"ev":"EpochEnd","time_us":0,"bogus":1}')

    def test_decode_rejects_wrong_scalar_type(self):
        line = encode_event(reclaim(0)).replace('"alloc"', "3")
        with pytest.raises(ParseError, match="trigger must be str"):
            decode_event(line)

    def test_decode_rejects_missing_required_field(self):
        with pytest.raises(ParseError, match="malformed"):
            decode_event('{"ev":"ReclaimPass","time_us":0}')

    def test_decode_rejects_non_object(self):
        with pytest.raises(ParseError):
            decode_event("[1,2]")
        with pytest.raises(ParseError):
            decode_event("not json")

    def test_sink_counts_and_reads_back(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink(sampled(0))
            sink(reclaim(5))
        assert sink.n_written == 2
        events = read_trace(path)
        assert [e.kind for e in events] == ["AccessSampled", "ReclaimPass"]

    def test_validate_rejects_backwards_time(self):
        lines = [encode_event(sampled(10)), encode_event(sampled(5))]
        with pytest.raises(ParseError, match="moves backwards"):
            validate_trace_file(lines)
        # Non-monotone streams pass with the check off.
        summary = validate_trace_file(lines, require_monotone=False)
        assert summary.n_events == 2

    def test_validate_reports_line_numbers(self):
        lines = [encode_event(sampled(0)), "", "garbage"]
        with pytest.raises(ParseError, match="line 3"):
            validate_trace_file(lines)


def _example_values(cls):
    """Minimal plausible constructor kwargs for an event class."""
    import typing

    hints = typing.get_type_hints(cls)
    out = {}
    for name, hint in hints.items():
        if hint is int:
            out[name] = 3
        elif hint is float:
            out[name] = 1.5
        elif hint is bool:
            out[name] = True
        elif hint is str:
            out[name] = "alloc"
    return out


class TestMonotoneProperty:
    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=40))
    def test_emission_stamping_is_monotone(self, advances):
        """Events stamped with ``bus.now`` are monotone no matter how the
        clock advances, because the clock itself never moves backwards."""
        bus = TraceBus(ring_capacity=0)
        sink_lines = []
        bus.subscribe_all(lambda e: sink_lines.append(encode_event(e)))
        for step in advances:
            bus.advance_to(bus.now + step)
            bus.emit(sampled(bus.now))
        times = [e.time_us for e in read_trace(sink_lines)]
        assert times == sorted(times)
        summary = validate_trace_file(sink_lines)
        assert summary.n_events == len(advances)
        assert summary.first_time_us == times[0]
        assert summary.last_time_us == times[-1]


class TestKernelEmission:
    def test_kernel_epoch_and_reclaim_events(self, small_guest, queue):
        """A kernel driven over its DRAM budget emits EpochEnd every epoch
        and alloc/pressure ReclaimPass events."""
        from repro.sim.kernel import SimKernel
        from repro.sim.swap import ZramDevice
        from repro.units import MIB

        bus = TraceBus(queue.clock)
        kernel = SimKernel(small_guest, swap=ZramDevice(512 * MIB), seed=7, trace=bus)
        kernel.mmap(BASE, 400 * MIB)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 400 * MIB, fraction=0.5)],
            n_epochs=4,
        )
        assert bus.counts.get("EpochEnd") == 5  # run_epochs runs one inline
        assert bus.counts.get("ReclaimPass", 0) > 0
        triggers = {e.trigger for e in bus.ring if isinstance(e, ReclaimPass)}
        assert "alloc" in triggers
        epoch_events = [e for e in bus.ring if isinstance(e, EpochEnd)]
        assert epoch_events  # the last epoch is always within ring capacity
        # Domain time (epoch end) leads emission time by one epoch.
        assert all(e.epoch_end_us > e.time_us for e in epoch_events)

    def test_trace_package_passes_daos_lint_clean(self):
        """Meta: the new subsystem introduces no determinism findings —
        no new baseline entries allowed."""
        from pathlib import Path

        from repro.lint import lint_paths

        pkg = Path(__file__).resolve().parent.parent / "src" / "repro" / "trace"
        assert pkg.is_dir()
        diagnostics = lint_paths([pkg], relative_to=pkg.parent)
        assert diagnostics == [], [str(d) for d in diagnostics]
