"""Runner: configurations, normalisation, and the experiment driver."""

import pytest

from repro.errors import ConfigError
from repro.runner.configs import (
    CONFIGS,
    ETHP_SCHEMES,
    PRCL_SCHEMES,
    ExperimentConfig,
    get_config,
    prcl_config,
)
from repro.runner.experiment import run_experiment
from repro.runner.results import NormalizedResult, RunResult, average_rows, normalize
from repro.schemes.actions import Action
from repro.schemes.parser import parse_schemes
from repro.units import MIB, SEC
from repro.workloads.serverless import serverless_spec


class TestConfigs:
    def test_six_paper_configurations(self):
        assert sorted(CONFIGS) == ["baseline", "ethp", "prcl", "prec", "rec", "thp"]

    def test_baseline_has_nothing_enabled(self):
        cfg = get_config("baseline")
        assert cfg.monitor is None
        assert cfg.thp_mode == "never"
        assert cfg.schemes_text is None

    def test_rec_prec_monitor_targets(self):
        assert get_config("rec").monitor == "vaddr"
        assert get_config("prec").monitor == "paddr"

    def test_thp_config(self):
        assert get_config("thp").thp_mode == "always"

    def test_ethp_is_listing3_lines_2_3(self):
        schemes = parse_schemes(ETHP_SCHEMES)
        assert [s.action for s in schemes] == [Action.HUGEPAGE, Action.NOHUGEPAGE]
        assert schemes[1].pattern.min_size == 2 * MIB
        assert schemes[1].pattern.min_age_us == 7 * SEC

    def test_prcl_is_listing3_line_5(self):
        (scheme,) = parse_schemes(PRCL_SCHEMES)
        assert scheme.action is Action.PAGEOUT
        assert scheme.pattern.min_size == 4096
        assert scheme.pattern.min_age_us == 5 * SEC
        assert scheme.pattern.max_freq == 0.0

    def test_prcl_config_custom_age(self):
        cfg = prcl_config(17 * SEC)
        (scheme,) = parse_schemes(cfg.schemes_text)
        assert scheme.pattern.min_age_us == 17 * SEC

    def test_schemes_require_monitor(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(name="bad", schemes_text="4K max min min 5s max pageout")

    def test_quota_requires_schemes(self):
        from repro.schemes.quotas import Quota

        with pytest.raises(ConfigError):
            ExperimentConfig(name="bad", monitor="vaddr", quota=Quota(size_bytes=MIB))

    def test_config_quota_reaches_engine(self):
        from repro.schemes.quotas import Quota

        config = ExperimentConfig(
            name="q",
            monitor="vaddr",
            schemes_text="4K max min min 1s max pageout\n",
            quota=Quota(size_bytes=MIB, reset_interval_us=SEC),
        )
        result = run_experiment(SMALL, config=config, seed=0)
        stats = next(iter(result.scheme_stats.values()))
        unrestricted = run_experiment(SMALL, config="prcl", seed=0)
        stats_free = next(iter(unrestricted.scheme_stats.values()))
        assert stats["sz_applied"] < stats_free["sz_applied"]

    def test_unknown_config_rejected(self):
        with pytest.raises(ConfigError):
            get_config("turbo")


class TestNormalize:
    def _result(self, runtime, rss, workload="w", config="c"):
        return RunResult(
            workload=workload,
            config=config,
            machine="i3.metal",
            seed=0,
            duration_us=1000,
            runtime_us=runtime,
            avg_rss_bytes=rss,
            peak_rss_bytes=rss,
            avg_system_bytes=rss,
        )

    def test_identity(self):
        base = self._result(100.0, 100.0)
        n = normalize(base, base)
        assert n.performance == 1.0
        assert n.memory_efficiency == 1.0
        assert n.memory_saving == 0.0
        assert n.slowdown == 0.0

    def test_slower_and_leaner(self):
        base = self._result(100.0, 100.0)
        run = self._result(125.0, 50.0)
        n = normalize(run, base)
        assert n.performance == pytest.approx(0.8)
        assert n.memory_efficiency == pytest.approx(2.0)
        assert n.memory_saving == pytest.approx(0.5)
        assert n.slowdown == pytest.approx(0.25)

    def test_workload_mismatch_rejected(self):
        base = self._result(100.0, 100.0, workload="a")
        run = self._result(100.0, 100.0, workload="b")
        with pytest.raises(ConfigError):
            normalize(run, base)

    def test_degenerate_baseline_rejected(self):
        base = self._result(0.0, 100.0)
        with pytest.raises(ConfigError):
            normalize(self._result(1.0, 1.0), base)

    def test_average_rows(self):
        rows = [
            NormalizedResult("a", "c", "m", 1.0, 2.0, 0.5, 0.0, 1.0),
            NormalizedResult("b", "c", "m", 0.5, 1.0, 0.0, 1.0, 1.0),
        ]
        avg = average_rows(rows, "c", "m")
        assert avg.workload == "average"
        assert avg.performance == pytest.approx(0.75)
        assert avg.memory_efficiency == pytest.approx(1.5)

    def test_average_empty_rejected(self):
        with pytest.raises(ConfigError):
            average_rows([], "c", "m")

    def test_monitor_cpu_share(self):
        result = self._result(100.0, 100.0)
        result.monitor_cpu_us = 10.0
        assert result.monitor_cpu_share == pytest.approx(10.0 / 1000)


SMALL = serverless_spec(footprint_mib=96, cold_share=0.8, duration_s=20)


class TestRunExperiment:
    def test_baseline_runs(self):
        result = run_experiment(SMALL, config="baseline", seed=0)
        assert result.runtime_us > 0
        assert result.avg_rss_bytes > 0
        assert result.config == "baseline"
        assert result.monitor_checks == 0

    def test_rec_records_snapshots(self):
        result = run_experiment(SMALL, config="rec", seed=0)
        assert result.monitor_checks > 0
        assert result.snapshots
        assert result.monitor_cpu_share < 0.05

    def test_prcl_saves_memory_on_cold_workload(self):
        base = run_experiment(SMALL, config="baseline", seed=0)
        prcl = run_experiment(SMALL, config="prcl", seed=0)
        n = normalize(prcl, base)
        assert n.memory_saving > 0.3
        assert n.slowdown < 0.10

    def test_scheme_stats_exported(self):
        result = run_experiment(SMALL, config="prcl", seed=0)
        assert any("pageout" in key for key in result.scheme_stats)

    def test_deterministic(self):
        a = run_experiment(SMALL, config="prcl", seed=3)
        b = run_experiment(SMALL, config="prcl", seed=3)
        assert a.runtime_us == b.runtime_us
        assert a.avg_rss_bytes == b.avg_rss_bytes

    def test_seed_changes_results(self):
        a = run_experiment(SMALL, config="rec", seed=1)
        b = run_experiment(SMALL, config="rec", seed=2)
        # Monitoring sampling is randomised, so check counts differ
        # somewhere down the line.
        assert (a.runtime_us, a.monitor_checks) != (b.runtime_us, b.monitor_checks)

    def test_machine_affects_runtime(self):
        slow = run_experiment(SMALL, config="baseline", machine="i3.metal", seed=0)
        fast = run_experiment(SMALL, config="baseline", machine="z1d.metal", seed=0)
        assert fast.runtime_us < slow.runtime_us

    def test_swap_kind_none(self):
        result = run_experiment(SMALL, config="prcl", swap="none", seed=0)
        # Nothing can be paged out without swap.
        base = run_experiment(SMALL, config="baseline", swap="none", seed=0)
        assert result.avg_rss_bytes == pytest.approx(base.avg_rss_bytes, rel=0.02)

    def test_swap_kind_file_saves_more_system_memory_than_zram(self):
        zram = run_experiment(SMALL, config="prcl", swap="zram", seed=0)
        file_ = run_experiment(SMALL, config="prcl", swap="file", seed=0)
        assert file_.avg_system_bytes < zram.avg_system_bytes

    def test_unknown_swap_rejected(self):
        with pytest.raises(ConfigError):
            run_experiment(SMALL, config="baseline", swap="tape")

    def test_final_memory_fields(self):
        result = run_experiment(SMALL, config="prcl", seed=0)
        assert result.final_rss_bytes > 0
        assert result.final_system_bytes >= result.final_rss_bytes
        # The scheme keeps reclaiming, so the end state is leaner than
        # the time-weighted average (which includes the warm-up).
        assert result.final_rss_bytes <= result.avg_rss_bytes * 1.05

    def test_time_scale(self):
        full = run_experiment(SMALL, config="baseline", seed=0)
        half = run_experiment(SMALL, config="baseline", seed=0, time_scale=0.5)
        assert half.duration_us == full.duration_us // 2
