"""The vectorized-state dataflow linter (lint pass 3, DF3xx).

Each DF code gets positive and negative cases on synthetic modules; the
golden bad-code corpus under ``tests/fixtures/bad_dataflow/`` pins one
canonical faulty shape per code (stored as ``.txt`` so the lint gate
over ``tests/`` does not flag its own corpus); the meta-test at the
bottom pins ``src/repro`` to zero DF findings.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

import repro
from repro.lint import LintConfig, Severity, lint_paths, lint_source, render_text
from repro.lint.dataflow import DataflowConfig, dataflow_source

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "bad_dataflow"

#: code → (corpus file, expected severity outside fingerprint modules).
CORPUS = {
    "DF301": ("df301.txt", Severity.ERROR),
    "DF302": ("df302.txt", Severity.ERROR),
    "DF303": ("df303.txt", Severity.ERROR),
    "DF310": ("df310.txt", Severity.ERROR),
    "DF320": ("df320.txt", Severity.WARNING),
    "DF330": ("df330.txt", Severity.ERROR),
}


def lint(code, filename="mod.py", config=None):
    return lint_source(textwrap.dedent(code), filename, config)


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


class TestDF301GenerationBump:
    BAD = """\
        class Columns:
            __slots__ = ("start", "generation")

            def __init__(self):
                self.start = ()
                self.generation = 0

            def rebuild(self, starts):
                self.start = starts
        """

    def test_rebind_without_bump_flagged(self):
        diags = lint(self.BAD)
        assert codes_of(diags) == ["DF301"]
        assert "rebuild" in diags[0].message and "generation" in diags[0].message

    def test_bump_clears_the_finding(self):
        good = self.BAD.replace(
            "self.start = starts",
            "self.start = starts\n                self.generation += 1",
        )
        assert good != self.BAD
        assert lint(good) == []

    def test_class_without_generation_slot_exempt(self):
        assert lint(self.BAD.replace('"generation"', '"end"')) == []

    def test_private_attribute_exempt(self):
        private = self.BAD.replace(
            "self.start = starts", "self._scratch = starts"
        )
        assert lint(private) == []

    def test_init_exempt(self):
        # __init__ necessarily binds every column with no prior readers.
        assert "DF301" not in codes_of(
            lint(self.BAD[: self.BAD.index("def rebuild")])
        )


class TestDF302StoredSliceViews:
    def test_stored_slice_flagged(self):
        diags = lint(
            """\
            class W:
                def focus(self, arr, lo, hi):
                    self.hot = arr[lo:hi]
            """
        )
        assert codes_of(diags) == ["DF302"]

    def test_slice_named_by_convention_flagged(self):
        diags = lint(
            """\
            class W:
                def focus(self, arr, row_sl):
                    self.hot = arr[row_sl]
            """
        )
        assert codes_of(diags) == ["DF302"]

    def test_copy_allowed(self):
        assert (
            lint(
                """\
                class W:
                    def focus(self, arr, lo, hi):
                        self.hot = arr[lo:hi].copy()
                """
            )
            == []
        )

    def test_bind_method_allowed(self):
        assert (
            lint(
                """\
                class W:
                    def _bind(self, arr, lo, hi):
                        self.hot = arr[lo:hi]
                """
            )
            == []
        )

    def test_scalar_index_allowed(self):
        assert (
            lint(
                """\
                class W:
                    def focus(self, arr, i):
                        self.hot = arr[i]
                """
            )
            == []
        )


class TestDF303AliasingInPlaceOps:
    def test_aug_assign_on_overlapping_slices_flagged(self):
        diags = lint("def f(col):\n    col[1:] += col[:-1]\n")
        assert codes_of(diags) == ["DF303"]

    def test_out_kwarg_aliasing_flagged(self):
        diags = lint(
            """\
            import numpy as np

            def f(col, a_sl, b_sl):
                np.add(col[a_sl], 1, out=col[b_sl])
            """
        )
        assert codes_of(diags) == ["DF303"]

    def test_distinct_bases_allowed(self):
        assert lint("def f(a, b):\n    a[1:] += b[:-1]\n") == []

    def test_identical_slices_allowed(self):
        # Same slice on both sides is elementwise-safe (x[sl] += x[sl]
        # reads and writes the same positions).
        assert lint("def f(col, sl):\n    col[sl] += col[sl]\n") == []


class TestDF310UnitConfusion:
    def test_mixed_unit_arithmetic_flagged(self):
        diags = lint("def f(start_us, span_bytes):\n    return start_us + span_bytes\n")
        assert codes_of(diags) == ["DF310"]
        assert "microseconds" in diags[0].message and "bytes" in diags[0].message

    def test_mixed_unit_comparison_flagged(self):
        diags = lint("def f(size_bytes, deadline_us):\n    return size_bytes < deadline_us\n")
        assert codes_of(diags) == ["DF310"]

    def test_same_unit_allowed(self):
        assert lint("def f(a_bytes, b_bytes):\n    return a_bytes + b_bytes\n") == []

    def test_pages_and_frames_share_a_class(self):
        assert lint("def f(n_pages, n_frames):\n    return n_pages - n_frames\n") == []

    def test_conversion_call_launders(self):
        # A call in between means someone converted; the pass is
        # deliberately syntactic and stands down.
        assert (
            lint("def f(start_us, span_bytes):\n    return start_us + to_us(span_bytes)\n")
            == []
        )


class TestDF320GlobalMutation:
    BAD = "_MEMO = None\n\ndef set_memo(v):\n    global _MEMO\n    _MEMO = v\n"

    def test_warning_in_ordinary_module(self):
        diags = lint(self.BAD, filename="analysis.py")
        assert [(d.code, d.severity) for d in diags] == [("DF320", Severity.WARNING)]

    def test_error_in_fingerprint_module(self):
        diags = lint(self.BAD, filename="sweep/cache.py")
        assert [(d.code, d.severity) for d in diags] == [("DF320", Severity.ERROR)]

    def test_global_read_without_assignment_allowed(self):
        assert lint("_MEMO = 1\n\ndef get():\n    global _MEMO\n    return _MEMO\n") == []


class TestDF330SwallowedExceptions:
    BAD = """\
        def f(path):
            try:
                return open(path).read()
            except Exception:
                return None
        """

    def test_swallowing_broad_except_flagged(self):
        diags = lint(self.BAD)
        assert codes_of(diags) == ["DF330"]
        assert diags[0].severity is Severity.ERROR

    def test_bare_except_flagged(self):
        diags = lint(self.BAD.replace("except Exception:", "except:"))
        assert codes_of(diags) == ["DF330"]
        assert "bare except" in diags[0].message

    def test_base_exception_flagged(self):
        diags = lint(
            self.BAD.replace("except Exception:", "except BaseException:")
        )
        assert codes_of(diags) == ["DF330"]

    def test_broad_member_of_tuple_flagged(self):
        diags = lint(
            self.BAD.replace("except Exception:", "except (OSError, Exception):")
        )
        assert codes_of(diags) == ["DF330"]

    def test_reraise_allowed(self):
        # The atomic-write idiom: clean up, then propagate.
        good = """\
            def f(path, tmp):
                try:
                    return open(path).read()
                except BaseException:
                    cleanup(tmp)
                    raise
            """
        assert lint(good) == []

    def test_wrapping_raise_allowed(self):
        good = """\
            def f(text):
                try:
                    return parse(text)
                except Exception as exc:
                    raise ValueError(f"bad input: {exc}") from exc
            """
        assert lint(good) == []

    def test_logging_call_allowed(self):
        good = """\
            def f(handler, event):
                try:
                    handler(event)
                except Exception:
                    _log.warning("handler failed; unsubscribing")
            """
        assert lint(good) == []

    def test_consumed_exception_allowed(self):
        # Recording the exception value is structured handling.
        good = """\
            def f(handler, event, broken):
                try:
                    handler(event)
                except Exception as exc:
                    broken.append((handler, exc))
            """
        assert lint(good) == []

    def test_bound_but_unread_still_flagged(self):
        diags = lint(
            self.BAD.replace("except Exception:", "except Exception as exc:")
        )
        assert codes_of(diags) == ["DF330"]

    def test_narrow_types_exempt(self):
        assert (
            lint(
                """\
                def f(conn, payload):
                    try:
                        conn.send(payload)
                    except (BrokenPipeError, EOFError):
                        pass
                """
            )
            == []
        )


class TestSuppressionAndExemption:
    def test_same_line_disable(self):
        assert lint("def f(col):\n    col[1:] += col[:-1]  # daos-lint: disable=DF303\n") == []

    def test_wrong_code_does_not_suppress(self):
        diags = lint("def f(col):\n    col[1:] += col[:-1]  # daos-lint: disable=DF301\n")
        assert codes_of(diags) == ["DF303"]

    def test_legacy_oracles_exempt(self):
        assert lint("def f(col):\n    col[1:] += col[:-1]\n", filename="_legacy_kernel.py") == []

    def test_unparsable_source_returns_no_df_findings(self):
        assert dataflow_source("def broken(:\n", "mod.py") == []


class TestGoldenCorpus:
    @pytest.mark.parametrize("code", sorted(CORPUS))
    def test_fixture_caught_with_expected_severity(self, code):
        """Every corpus file trips exactly its own DF code."""
        filename, severity = CORPUS[code]
        source = (FIXTURES / filename).read_text(encoding="utf-8")
        diags = lint_source(source, f"fixture_{code.lower()}.py")
        assert codes_of(diags) == [code], render_text(diags)
        assert diags[0].severity is severity

    def test_corpus_covers_every_df_code(self):
        """A DF code added to the registry must gain a corpus file."""
        from repro.lint.diagnostics import CODES

        registered = {c for c in CODES if c.startswith("DF")}
        assert registered == set(CORPUS)

    def test_corpus_stays_out_of_the_lint_walk(self):
        # The fixtures must never gain a .py suffix: the CI lint gate
        # rglobs tests/**/*.py and would flag its own corpus.
        assert sorted(p.suffix for p in FIXTURES.iterdir()) == [".txt"] * len(CORPUS)

    def test_dataflow_config_matches_lint_config(self):
        lc, dc = LintConfig(), DataflowConfig()
        assert dc.bind_methods == lc.bind_methods
        assert dc.fingerprint_parts == lc.fingerprint_parts


class TestMetaSourceTreeClean:
    def test_repro_package_has_no_df_findings(self):
        """The shipped tree satisfies its own dataflow linter — the
        acceptance bar for turning DF3xx on as an error class."""
        pkg = Path(repro.__file__).resolve().parent
        diags = [
            d
            for d in lint_paths([pkg], LintConfig(), relative_to=pkg.parent)
            if d.code.startswith("DF")
        ]
        assert diags == [], render_text(diags)
