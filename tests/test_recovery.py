"""Crash consistency: the checkpoint codec, journal, and supervisor.

The recovery package's contract is byte-identity: a run interrupted at
*any* epoch and restored must be indistinguishable — state digest,
RunResult fields, canonical trace tail — from the run that was never
interrupted; a SIGKILLed sweep resumed from its write-ahead journal
must produce the same canonical report as an uninterrupted one, with
completed points *replayed*, not re-executed.  These tests pin that
contract, plus the failure-detection edges: corrupt checkpoints refuse
to restore (CLI exit 4), hung workers die to the watchdog (exit 3),
torn journal tails are repaired rather than replayed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CheckpointError, ConfigError, DaosError, WatchdogTimeout
from repro.faults import FaultPlan
from repro.recovery import (
    SweepJournal,
    checkpoint_run,
    read_checkpoint_header,
    restore_run,
    resume_checkpoint,
    state_digest,
)
from repro.recovery.codec import checkpoint_fleet_stepping
from repro.runner.experiment import ExperimentRun, run_experiment
from repro.sweep.grid import SweepGrid
from repro.sweep.points import register_point_function
from repro.sweep.presets import fig3_grid
from repro.sweep.runner import SweepRunner
from repro.sweep.serialize import _strip_volatile, encode_value
from repro.trace import TraceBus
from repro.trace.events import CheckpointWritten, RunResumed, WorkerReaped

#: The smallest catalog workload — checkpoint tests re-run it a lot.
WORKLOAD = "splash2x/volrend"
SCALE = 0.05
SEED = 11

#: Trace kinds the recovery layer itself emits: present only on the
#: checkpointed side, so byte-identity comparisons filter them out.
RECOVERY_KINDS = {CheckpointWritten.kind, RunResumed.kind}


def canonical_result(result) -> object:
    """A RunResult as its volatile-free canonical encoding — the same
    stripping the sweep cache fingerprints with."""
    return _strip_volatile(encode_value(result))


def fresh_run(trace=None) -> ExperimentRun:
    run = ExperimentRun(
        WORKLOAD, config="rec", seed=SEED, time_scale=SCALE, trace=trace
    )
    run.start()
    return run


def filtered_counts(bus) -> dict:
    return {
        kind: count
        for kind, count in bus.summary().counts.items()
        if kind not in RECOVERY_KINDS
    }


# ----------------------------------------------------------------------
# Checkpoint codec
# ----------------------------------------------------------------------
class TestCheckpointCodec:
    def test_run_checkpoint_is_invisible(self, tmp_path):
        """Checkpointing mid-run changes neither the result nor the
        (recovery-filtered) trace stream."""
        plain_bus, ck_bus = TraceBus(ring_capacity=0), TraceBus(ring_capacity=0)
        plain = run_experiment(
            WORKLOAD, config="rec", seed=SEED, time_scale=SCALE, trace=plain_bus
        )
        ck = run_experiment(
            WORKLOAD,
            config="rec",
            seed=SEED,
            time_scale=SCALE,
            trace=ck_bus,
            checkpoint=str(tmp_path / "ck.bin"),
            checkpoint_every=3,
        )
        assert canonical_result(ck) == canonical_result(plain)
        assert ck_bus.summary().counts[CheckpointWritten.kind] > 0
        assert filtered_counts(ck_bus) == filtered_counts(plain_bus)

    def test_resume_completes_byte_identically(self, tmp_path):
        path = str(tmp_path / "ck.bin")
        plain = run_experiment(WORKLOAD, config="rec", seed=SEED, time_scale=SCALE)
        run_experiment(
            WORKLOAD,
            config="rec",
            seed=SEED,
            time_scale=SCALE,
            checkpoint=path,  # checkpoint_every=0: once at the midpoint
        )
        resumed = resume_checkpoint(path)
        assert canonical_result(resumed) == canonical_result(plain)

    def test_header_describes_the_snapshot(self, tmp_path):
        path = str(tmp_path / "ck.bin")
        run = fresh_run()
        run.run_until(3 * run.spec.epoch_us)
        digest = checkpoint_run(run, path)
        header = read_checkpoint_header(path)
        assert header["kind"] == "run"
        assert header["time_us"] == 3 * run.spec.epoch_us
        assert header["payload_sha256"].startswith(digest)
        assert header["payload_bytes"] > 0
        assert "code_version" in header

    def test_corrupt_payload_refuses_to_restore(self, tmp_path):
        path = tmp_path / "ck.bin"
        run = fresh_run()
        run.run_until(2 * run.spec.epoch_us)
        checkpoint_run(run, str(path))
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="digest mismatch"):
            restore_run(str(path))

    def test_truncated_payload_refuses_to_restore(self, tmp_path):
        path = tmp_path / "ck.bin"
        run = fresh_run()
        run.run_until(2 * run.spec.epoch_us)
        checkpoint_run(run, str(path))
        path.write_bytes(path.read_bytes()[:-64])
        with pytest.raises(CheckpointError):
            restore_run(str(path))

    def test_not_a_checkpoint_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(CheckpointError):
            read_checkpoint_header(str(path))
        with pytest.raises(CheckpointError):
            read_checkpoint_header(str(tmp_path / "missing.bin"))

    def test_version_skew_refused_unless_allowed(self, tmp_path, monkeypatch):
        path = str(tmp_path / "ck.bin")
        monkeypatch.setenv("REPRO_SWEEP_VERSION_TAG", "writer-code")
        run = fresh_run()
        run.run_until(2 * run.spec.epoch_us)
        checkpoint_run(run, path)
        monkeypatch.setenv("REPRO_SWEEP_VERSION_TAG", "reader-code")
        with pytest.raises(CheckpointError, match="version"):
            restore_run(path)
        restored = restore_run(path, strict_version=False)
        assert restored.queue is not None  # restored and runnable


class TestInterruptAnywhere:
    """The tentpole property: interrupt at *any* epoch, restore, and the
    final state digest matches the uninterrupted run's."""

    _uninterrupted: dict = {}

    @classmethod
    def _reference_digest(cls) -> str:
        if "digest" not in cls._uninterrupted:
            run = fresh_run()
            run.run_until(run.spec.duration_us)
            cls._uninterrupted["digest"] = state_digest(run)
            cls._uninterrupted["n_epochs"] = int(
                run.spec.duration_us // run.spec.epoch_us
            )
        return cls._uninterrupted["digest"]

    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_state_digest_identity(self, data):
        reference = self._reference_digest()
        n_epochs = self._uninterrupted["n_epochs"]
        epoch = data.draw(
            st.integers(min_value=1, max_value=n_epochs - 1), label="epoch"
        )
        run = fresh_run()
        run.run_until(epoch * run.spec.epoch_us)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "ck.bin")
            checkpoint_run(run, path)
            # announce=False: the RunResumed event is a deliberate
            # recovery-layer artifact in the trace counters; this test is
            # about *simulation* state identity.
            restored = restore_run(path, announce=False)
        restored.run_until(restored.spec.duration_us)
        assert state_digest(restored) == reference


# ----------------------------------------------------------------------
# Fleet checkpoints under chaos
# ----------------------------------------------------------------------
class TestFleetCheckpoint:
    CFG = dict(
        n_tenants=40,
        duration_s=60.0,
        footprint_mib=32,
        pool_ratio=0.4,
        seed=13,
    )

    @staticmethod
    def _chaos_plan():
        return FaultPlan.build(
            [
                {"kind": "tenant_storm", "start": "5s", "end": "15s"},
                {
                    "kind": "pool_pressure_spike",
                    "start": "25s",
                    "end": "45s",
                    "magnitude": 200000,
                },
            ],
            seed=7,
            name="fleet-chaos",
        )

    def _run(self, *, checkpoint=None, every_ticks=5, resume_from=None):
        from repro.faults import FaultInjector
        from repro.fleet import FleetConfig, FleetScheduler

        if resume_from is not None:
            return resume_checkpoint(resume_from)
        cfg = FleetConfig(**self.CFG)
        scheduler = FleetScheduler(
            cfg, sanitize=True, faults=FaultInjector(self._chaos_plan())
        )
        if checkpoint is None:
            scheduler.start_loop().run_until(cfg.duration_us)
        else:
            checkpoint_fleet_stepping(
                scheduler, checkpoint, every_ticks=every_ticks
            )
        return scheduler.finish()

    def test_chaos_fleet_checkpoint_resume_identity(self, tmp_path):
        """Stepped + checkpointed + resumed chaos fleets all agree, under
        the sanitizer's runtime checks (DAOS_SANITIZE-equivalent)."""
        path = str(tmp_path / "fleet.bin")
        plain = self._run()
        stepped = self._run(checkpoint=path)
        assert stepped.digest() == plain.digest()
        assert stepped.canonical_json() == plain.canonical_json()
        resumed = self._run(resume_from=path)
        assert resumed.digest() == plain.digest()
        assert resumed.canonical_json() == plain.canonical_json()

    def test_chaos_actually_perturbs(self):
        """The fault plan must move the needle, or the identity test
        above proves nothing about chaos runs."""
        from repro.fleet import FleetConfig, run_fleet

        clean = run_fleet(FleetConfig(**self.CFG))
        chaotic = self._run()
        assert chaotic.digest() != clean.digest()


# ----------------------------------------------------------------------
# Write-ahead journal
# ----------------------------------------------------------------------
def _triple(params):
    return {"value": float(params["x"]) * 3.0}


register_point_function("recovery_triple", _triple)


@pytest.fixture
def journal_grid():
    return SweepGrid.from_axes("recovery_triple", {"x": [1, 2, 3, 4, 5]})


class TestSweepJournal:
    def test_resume_replays_journaled_points(
        self, journal_grid, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SWEEP_VERSION_TAG", "journal-test")
        reference = SweepRunner(journal_grid, jobs=1).run()
        first = SweepRunner(
            journal_grid, jobs=1, journal_dir=tmp_path / "j"
        ).run()
        assert first.canonical_json() == reference.canonical_json()
        resumed = SweepRunner(
            journal_grid, jobs=1, journal_dir=tmp_path / "j", resume=True
        ).run()
        assert resumed.n_replayed == 5
        assert resumed.n_executed == 0
        assert resumed.canonical_json() == reference.canonical_json()

    def test_resume_needs_a_journal_dir(self, journal_grid):
        with pytest.raises(ConfigError, match="journal"):
            SweepRunner(journal_grid, jobs=1, resume=True)

    def test_version_skew_replays_nothing(
        self, journal_grid, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SWEEP_VERSION_TAG", "code-A")
        SweepRunner(journal_grid, jobs=1, journal_dir=tmp_path / "j").run()
        monkeypatch.setenv("REPRO_SWEEP_VERSION_TAG", "code-B")
        resumed = SweepRunner(
            journal_grid, jobs=1, journal_dir=tmp_path / "j", resume=True
        ).run()
        # Keys embed the code-version tag: stale journals match nothing.
        assert resumed.n_replayed == 0
        assert resumed.n_executed == 5

    def test_torn_tail_is_dropped_and_repaired(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_VERSION_TAG", "torn-test")
        journal = SweepJournal(tmp_path / "j")
        with journal:
            journal.open(version_tag="torn-test", grid_digest="d", n_points=2)
            journal.record(index=0, key="k0", encoded="{}", attempts=1, wall_s=0.1)
            journal.record(index=1, key="k1", encoded="{}", attempts=1, wall_s=0.1)
        # Tear the final line mid-write, as a crash would.
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[:-9])
        assert set(journal.load()) == {"k0"}
        # Appending after the tear must not concatenate records.
        with journal:
            journal.open(version_tag="torn-test", grid_digest="d", n_points=2)
            journal.record(index=1, key="k1", encoded="{}", attempts=1, wall_s=0.2)
        assert set(journal.load()) == {"k0", "k1"}

    def test_duplicate_keys_keep_the_last_record(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        with journal:
            journal.open(version_tag="t", grid_digest="d", n_points=1)
            journal.record(index=0, key="k", encoded="1", attempts=1, wall_s=0.1)
            journal.record(index=0, key="k", encoded="2", attempts=2, wall_s=0.2)
        assert journal.load()["k"]["encoded"] == "2"

    def test_foreign_file_raises_checkpoint_error(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.path.parent.mkdir(parents=True)
        journal.path.write_text('{"format": "not-a-journal"}\n')
        with pytest.raises(CheckpointError):
            journal.load()


class TestSigkilledSweepResumes:
    """The acceptance-criterion crash: SIGKILL a journaled sweep mid-run,
    resume, and get the uninterrupted report byte for byte — with the
    completed points replayed from the journal, not re-executed."""

    DRIVER = """\
import sys
import time

from repro.sweep.grid import SweepGrid
from repro.sweep.points import register_point_function
from repro.sweep.runner import SweepRunner


def _slow_triple(params):
    time.sleep(0.35)
    return {"value": float(params["x"]) * 3.0}


register_point_function("recovery_slow_triple", _slow_triple)

if __name__ == "__main__":
    grid = SweepGrid.from_axes(
        "recovery_slow_triple", {"x": [1, 2, 3, 4, 5, 6]}
    )
    SweepRunner(grid, jobs=1, journal_dir=sys.argv[1]).run()
    print("UNINTERRUPTED", flush=True)
"""

    def test_sigkill_then_resume_byte_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_VERSION_TAG", "sigkill-test")
        driver = tmp_path / "drive.py"
        driver.write_text(self.DRIVER)
        journal_dir = tmp_path / "journal"
        env = dict(os.environ, REPRO_SWEEP_VERSION_TAG="sigkill-test")  # daos-lint: disable=DT204 (child-process env, not library behaviour)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")

        child = subprocess.Popen(
            [sys.executable, str(driver), str(journal_dir)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            journal = SweepJournal(journal_dir)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if journal.path.exists() and len(journal.load()) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("journal never reached two completed points")
            child.send_signal(signal.SIGKILL)
        finally:
            child.wait()

        completed = len(journal.load())
        assert 2 <= completed < 6, "the kill must land mid-grid"

        register_point_function(
            "recovery_slow_triple", lambda p: {"value": float(p["x"]) * 3.0}
        )
        grid = SweepGrid.from_axes(
            "recovery_slow_triple", {"x": [1, 2, 3, 4, 5, 6]}
        )
        reference = SweepRunner(grid, jobs=1).run()
        resumed = SweepRunner(
            grid, jobs=1, journal_dir=journal_dir, resume=True
        ).run()
        assert resumed.n_replayed == completed  # replay, not re-execution
        assert resumed.n_executed == 6 - completed
        assert resumed.canonical_json() == reference.canonical_json()


# ----------------------------------------------------------------------
# Supervisor: watchdog, reaping, reassignment
# ----------------------------------------------------------------------
class TestSupervisor:
    @staticmethod
    def _hang_plan(probability):
        return FaultPlan.build(
            [{"kind": "worker_hang", "probability": probability}], seed=3
        )

    def test_hang_without_watchdog_is_a_config_error(self):
        with pytest.raises(ConfigError, match="watchdog"):
            SweepRunner(fig3_grid(n_points=5), jobs=2, faults=self._hang_plan(0.5))

    def test_hung_workers_reaped_and_retried_to_identity(self):
        """Every point's first attempt hangs; the watchdog reaps it and
        the retry succeeds — producing the serial report byte for byte,
        with the reaps visible as WorkerReaped events."""
        grid = fig3_grid(n_points=5)
        serial = SweepRunner(grid, jobs=1).run()
        bus = TraceBus(ring_capacity=0)
        report = SweepRunner(
            grid,
            jobs=3,
            faults=self._hang_plan(1.0),
            point_timeout_s=3.0,
            retries=1,
            trace=bus,
        ).run()
        assert report.n_failed == 0
        assert report.canonical_json() == serial.canonical_json()
        assert bus.summary().counts[WorkerReaped.kind] == report.n_total

    def test_watchdog_timeout_is_a_distinct_failure_class(self):
        grid = fig3_grid(n_points=5)
        report = SweepRunner(
            grid,
            jobs=3,
            faults=self._hang_plan(1.0),
            point_timeout_s=1.5,
            retries=0,
        ).run()
        assert report.n_failed == report.n_total
        assert len(report.watchdog_failures()) == report.n_total
        for outcome in report.failures():
            assert outcome.error_type == "WatchdogTimeout"
            assert "watchdog deadline" in outcome.error


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
class TestExitCodes:
    """Exit 3 (watchdog) and 4 (untrusted checkpoint) vs the generic 2."""

    @pytest.mark.parametrize(
        "exc,code",
        [
            (WatchdogTimeout("deadline"), 3),
            (CheckpointError("digest mismatch"), 4),
            (ConfigError("bad flag"), 2),
            (DaosError("generic"), 2),
        ],
    )
    def test_error_class_to_exit_code(self, exc, code, monkeypatch, capsys):
        import repro.cli as cli

        def explode(args):
            raise exc

        monkeypatch.setitem(cli._COMMANDS, "workloads", explode)
        assert cli.main(["workloads"]) == code
        assert "error:" in capsys.readouterr().err

    def test_corrupt_checkpoint_exits_4(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ck.bin"
        run = fresh_run()
        run.run_until(2 * run.spec.epoch_us)
        checkpoint_run(run, str(path))
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert main(["resume", str(path)]) == 4
        assert "refusing to restore" in capsys.readouterr().err

    def test_watchdogged_sweep_exits_3(self, tmp_path, capsys):
        from repro.cli import main

        plan = tmp_path / "hang.json"
        plan.write_text(
            json.dumps(
                {
                    "seed": 3,
                    "faults": [{"kind": "worker_hang", "probability": 1.0}],
                }
            )
        )
        rc = main(
            [
                "sweep",
                "--grid",
                "fig3",
                "-j",
                "3",
                "--no-cache",
                "--point-timeout",
                "1.5",
                "--retries",
                "0",
                "--faults",
                str(plan),
            ]
        )
        assert rc == 3

    def test_resume_roundtrip_exits_0(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ck.bin"
        run = fresh_run()
        run.run_until(2 * run.spec.epoch_us)
        checkpoint_run(run, str(path))
        assert main(["resume", str(path)]) == 0
        assert "runtime" in capsys.readouterr().out
