"""Layout churn under property testing: mmap/munmap storms.

Drives ``regions_update_tick`` through seeded storms of address-space
changes and checks, after every update:

* the **tiling invariant** — the region list covers the target ranges
  byte for byte (``check_invariants`` now asserts it; before the
  sliver fix, churn could permanently drop mapped bytes from
  monitoring);
* **counter-history preservation** — a region whose span survived the
  layout change keeps its counters through the update;
* **determinism** — two monitors with the same seed driven through the
  same storm end with identical region tables (the struct-of-arrays
  engine consumes randomness as a pure function of the region state).

Byte-identity of pool vs serial sweeps with the array engine is covered
end-to-end by ``tests/test_sweep_determinism.py`` (fingerprint
comparison), which runs against the same monitor code path.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.monitor.attrs import MonitorAttrs
from repro.monitor.core import DataAccessMonitor
from repro.monitor.primitives import VirtualPrimitive
from repro.sim.kernel import SimKernel
from repro.sim.machine import GuestSpec, get_instance
from repro.sim.swap import ZramDevice
from repro.units import MIB, MSEC

BASE = 0x7F00_0000_0000

ATTRS = MonitorAttrs(
    sampling_interval_us=1 * MSEC,
    aggregation_interval_us=20 * MSEC,
    regions_update_interval_us=100 * MSEC,
    min_nr_regions=5,
    max_nr_regions=80,
)

#: Extra-VMA slots the storm may map and unmap, away from the base VMA.
SLOTS = [BASE + (i + 2) * 256 * MIB for i in range(4)]


def _fresh_monitor(seed: int):
    guest = GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=256 * MIB)
    kernel = SimKernel(guest, swap=ZramDevice(128 * MIB), seed=7)
    kernel.mmap(BASE, 32 * MIB)
    monitor = DataAccessMonitor(VirtualPrimitive(kernel), ATTRS, seed=seed)
    monitor.init_regions()
    return kernel, monitor


def _apply_op(kernel, vmas, op) -> None:
    slot, size_mib = op
    if slot in vmas:
        kernel.munmap(vmas.pop(slot))
    else:
        vmas[slot] = kernel.mmap(SLOTS[slot], size_mib * MIB)


#: One storm step: toggle a slot between mapped (at some size) and not.
ops = st.lists(
    st.tuples(st.integers(0, len(SLOTS) - 1), st.sampled_from([4, 8, 16])),
    min_size=1,
    max_size=12,
)


@given(storm=ops)
@settings(max_examples=40, deadline=None)
def test_tiling_and_history_survive_churn(storm):
    kernel, monitor = _fresh_monitor(seed=11)
    vmas = {}
    now = 0
    for op in storm:
        # Stamp distinctive counters so preservation is observable.
        spans = []
        for i, region in enumerate(monitor.regions):
            region.nr_accesses = (i % 19) + 1
            region.last_nr_accesses = i % 7
            region.age = i % 13
            spans.append((region.start, region.end, (i % 19) + 1, i % 7, i % 13))
        _apply_op(kernel, vmas, op)
        now += ATTRS.regions_update_interval_us
        monitor.regions_update_tick(now)
        # Tiling: regions cover the target ranges byte for byte.
        monitor.check_invariants()
        total = sum(r.size for r in monitor.regions)
        expected = sum(e - s for s, e in monitor.primitive.target_ranges())
        assert total == expected
        # History: any region inside a surviving old span keeps the
        # counters that span carried (layouts here are page-aligned, so
        # no sliver absorption can rewrite boundaries).
        for region in monitor.regions:
            owners = [
                s for s in spans if s[0] <= region.start and region.end <= s[1]
            ]
            if owners:
                _, _, nr, last, age = owners[0]
                assert region.nr_accesses == nr
                assert region.last_nr_accesses == last
                assert region.age == age


@given(storm=ops)
@settings(max_examples=20, deadline=None)
def test_same_seed_storms_are_identical(storm):
    def run():
        kernel, monitor = _fresh_monitor(seed=23)
        vmas = {}
        now = 0
        for op in storm:
            _apply_op(kernel, vmas, op)
            now += ATTRS.regions_update_interval_us
            monitor.regions_update_tick(now)
            monitor.sample_tick(now)
            monitor.aggregate_tick(now + ATTRS.aggregation_interval_us)
        return [
            (r.start, r.end, r.nr_accesses, r.last_nr_accesses, r.age)
            for r in monitor.regions
        ]

    assert run() == run()
