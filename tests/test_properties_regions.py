"""Property-based invariants of the DAMON split/merge/aging loop.

The monitoring core is only trustworthy under load if its structural
invariants hold for *any* region layout, not just the ones unit tests
happen to construct.  These properties machine-check the paper's
central mechanism (§3.1):

* merging never violates the ``min_nr_regions`` floor (given region
  sizes at or below the merge size limit, the steady-state condition);
* splitting never exceeds the ``max_nr_regions`` ceiling;
* both passes preserve total covered bytes and keep the region list
  sorted and non-overlapping;
* aging resets exactly when the access count moved by more than the
  merge threshold, and increments otherwise.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.monitor.attrs import MonitorAttrs
from repro.monitor.core import DataAccessMonitor
from repro.monitor.region import MIN_REGION_SIZE, Region, merge_two, split_region
from repro.units import MSEC

K = MIN_REGION_SIZE

#: Small, fast attrs; min/max region bounds are what we probe.
ATTRS = MonitorAttrs(
    sampling_interval_us=1 * MSEC,
    aggregation_interval_us=20 * MSEC,
    regions_update_interval_us=200 * MSEC,
    min_nr_regions=5,
    max_nr_regions=60,
)


def _monitor(regions) -> DataAccessMonitor:
    """A monitor whose primitive is never touched by merge/split."""
    monitor = DataAccessMonitor(primitive=None, attrs=ATTRS, seed=11)
    monitor.regions = regions
    return monitor


@st.composite
def region_lists(draw, min_n=1, max_n=30, max_pages=16, gaps="maybe"):
    """A sorted, non-overlapping region list with random counters.

    ``gaps`` — "maybe": random gaps; "never": fully adjacent;
    "always": at least one page between consecutive regions.
    """
    n = draw(st.integers(min_n, max_n))
    lo = {"maybe": 0, "never": 0, "always": 1}[gaps]
    hi = {"maybe": 3, "never": 0, "always": 3}[gaps]
    regions = []
    cursor = 0
    for _ in range(n):
        cursor += draw(st.integers(lo, hi)) * K
        size = draw(st.integers(1, max_pages)) * K
        region = Region(cursor, cursor + size)
        region.nr_accesses = draw(st.integers(0, 20))
        region.last_nr_accesses = draw(st.integers(0, 20))
        region.age = draw(st.integers(0, 60))
        cursor += size
        regions.append(region)
    return regions


def _covered_bytes(regions) -> int:
    return sum(r.size for r in regions)


def _assert_sorted_nonoverlapping(regions) -> None:
    for left, right in zip(regions, regions[1:]):
        assert left.end <= right.start, f"{left!r} overlaps {right!r}"
    for region in regions:
        assert region.size >= MIN_REGION_SIZE


# ----------------------------------------------------------------------
# Merge pass
# ----------------------------------------------------------------------
@given(regions=region_lists(), threshold=st.integers(0, 10))
@settings(max_examples=200)
def test_merge_preserves_bytes_and_structure(regions, threshold):
    before_bytes = _covered_bytes(regions)
    before_n = len(regions)
    monitor = _monitor(regions)
    monitor._merge_regions(threshold)
    after = monitor.regions
    assert _covered_bytes(after) == before_bytes
    assert len(after) <= before_n
    _assert_sorted_nonoverlapping(after)


@given(regions=region_lists(min_n=5, max_n=30, max_pages=8), threshold=st.integers(0, 30))
@settings(max_examples=200)
def test_merge_respects_min_nr_regions_floor(regions, threshold):
    """With every region at or below the merge size limit (the
    steady-state the loop maintains), merging leaves at least
    ``min_nr_regions`` regions — the accuracy floor."""
    total = _covered_bytes(regions)
    sz_limit = total // ATTRS.min_nr_regions
    assume(sz_limit >= MIN_REGION_SIZE)
    assume(all(r.size <= sz_limit for r in regions))
    monitor = _monitor(regions)
    monitor._merge_regions(threshold)
    assert len(monitor.regions) >= ATTRS.min_nr_regions


# ----------------------------------------------------------------------
# Split pass
# ----------------------------------------------------------------------
@given(regions=region_lists(max_n=55))
@settings(max_examples=200)
def test_split_respects_max_nr_regions_ceiling(regions):
    assume(len(regions) <= ATTRS.max_nr_regions)
    before_bytes = _covered_bytes(regions)
    monitor = _monitor(regions)
    monitor._split_regions()
    after = monitor.regions
    assert len(after) <= ATTRS.max_nr_regions
    assert _covered_bytes(after) == before_bytes
    _assert_sorted_nonoverlapping(after)


@given(regions=region_lists())
@settings(max_examples=100)
def test_split_children_inherit_counters(regions):
    parents = [
        (r.start, r.end, r.nr_accesses, r.last_nr_accesses, r.age) for r in regions
    ]
    monitor = _monitor(regions)
    monitor._split_regions()
    for child in monitor.regions:
        parent = next(
            p for p in parents if p[0] <= child.start and child.end <= p[1]
        )
        assert child.nr_accesses == parent[2]
        assert child.last_nr_accesses == parent[3]
        assert child.age == parent[4]


# ----------------------------------------------------------------------
# Full merge→split cycles stay within the configured band
# ----------------------------------------------------------------------
@given(
    regions=region_lists(min_n=5, max_n=40, max_pages=6),
    thresholds=st.lists(st.integers(0, 8), min_size=1, max_size=6),
)
@settings(max_examples=100)
def test_cycles_stay_bounded(regions, thresholds):
    total = _covered_bytes(regions)
    sz_limit = total // ATTRS.min_nr_regions
    assume(sz_limit >= MIN_REGION_SIZE)
    assume(all(r.size <= sz_limit for r in regions))
    monitor = _monitor(regions)
    for threshold in thresholds:
        monitor._merge_regions(threshold)
        monitor._split_regions()
        assert ATTRS.min_nr_regions <= len(monitor.regions) <= ATTRS.max_nr_regions
        assert _covered_bytes(monitor.regions) == total
        monitor.check_invariants()


# ----------------------------------------------------------------------
# Aging
# ----------------------------------------------------------------------
@given(regions=region_lists(gaps="always"), threshold=st.integers(0, 10))
@settings(max_examples=200)
def test_aging_resets_exactly_on_changed_count(regions, threshold):
    """With gaps everywhere (no merge can fire), the aging rule is
    exactly observable: age resets iff the access count moved by more
    than the merge threshold, and increments otherwise."""
    before = [(r.nr_accesses, r.last_nr_accesses, r.age) for r in regions]
    monitor = _monitor(regions)
    monitor._merge_regions(threshold)
    assert len(monitor.regions) == len(before)
    for region, (nr, last, age) in zip(monitor.regions, before):
        if abs(nr - last) > threshold:
            assert region.age == 0, "changed count must reset the age"
        else:
            assert region.age == age + 1, "stable count must increment the age"


# ----------------------------------------------------------------------
# The two primitive operations
# ----------------------------------------------------------------------
@given(
    left_pages=st.integers(1, 32),
    right_pages=st.integers(1, 32),
    left_nr=st.integers(0, 20),
    right_nr=st.integers(0, 20),
    left_age=st.integers(0, 60),
    right_age=st.integers(0, 60),
)
def test_merge_two_weighted_averages_stay_in_range(
    left_pages, right_pages, left_nr, right_nr, left_age, right_age
):
    left = Region(0, left_pages * K)
    right = Region(left_pages * K, (left_pages + right_pages) * K)
    left.nr_accesses, right.nr_accesses = left_nr, right_nr
    left.age, right.age = left_age, right_age
    merged = merge_two(left, right)
    assert merged.size == left.size + right.size
    assert min(left_nr, right_nr) <= merged.nr_accesses <= max(left_nr, right_nr)
    assert min(left_age, right_age) <= merged.age <= max(left_age, right_age)
    assert merged.sampling_addr == left.sampling_addr


@given(pages=st.integers(2, 64), split_page=st.integers(1, 63), nr=st.integers(0, 20))
def test_split_region_tiles_parent_exactly(pages, split_page, nr):
    assume(split_page < pages)
    parent = Region(0, pages * K)
    parent.nr_accesses = nr
    left, right = split_region(parent, split_page * K)
    assert left.start == parent.start
    assert left.end == right.start
    assert right.end == parent.end
    assert left.nr_accesses == right.nr_accesses == nr
