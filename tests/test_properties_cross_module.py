"""Cross-module property tests: invariants that span layers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.monitor.attrs import MonitorAttrs
from repro.schemes.parser import format_scheme, parse_scheme
from repro.schemes.quotas import Quota
from repro.sim.kernel import SimKernel
from repro.sim.machine import GuestSpec, get_instance
from repro.sim.swap import ZramDevice
from repro.units import MIB, MSEC, SEC

from tests.helpers import BASE

ATTRS = MonitorAttrs()


class TestConservation:
    """Memory accounting conservation laws under random operations."""

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["touch", "pageout", "willneed", "cold"]),
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_pages_never_created_or_lost(self, ops):
        """present + swapped never exceeds the touched page population,
        and frames allocated always equals pages present."""
        guest = GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=256 * MIB)
        kernel = SimKernel(guest, swap=ZramDevice(128 * MIB), seed=2)
        kernel.mmap(BASE, 64 * MIB)
        pt = kernel.space.vmas[0].pages
        now = 0
        ever_touched = np.zeros(pt.n_pages, dtype=bool)
        for op, slot, span in ops:
            now += 100 * MSEC
            start = BASE + slot * 4 * MIB
            end = min(BASE + 64 * MIB, start + span * 4 * MIB)
            if op == "touch":
                kernel.apply_access(start, end, now, 100 * MSEC, stall_weight=0.0)
                lo = (start - BASE) // 4096
                hi = (end - BASE) // 4096
                ever_touched[lo:hi] = True
            elif op == "pageout":
                kernel.pageout(start, end, now)
            elif op == "willneed":
                kernel.madvise_willneed(start, end, now)
            elif op == "cold":
                kernel.madvise_cold(start, end, now)
            populated = pt.present | pt.swapped
            assert (populated <= ever_touched).all()
            assert int(np.count_nonzero(pt.present)) == kernel.frames.allocated
            assert int(np.count_nonzero(pt.swapped)) == kernel.swap.used_pages

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_swap_roundtrip_preserves_population(self, seed):
        guest = GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=256 * MIB)
        kernel = SimKernel(guest, swap=ZramDevice(128 * MIB), seed=seed)
        kernel.mmap(BASE, 32 * MIB)
        kernel.apply_access(BASE, BASE + 32 * MIB, 0, 100 * MSEC, stall_weight=0.0)
        before = kernel.rss_bytes()
        kernel.pageout(BASE, BASE + 32 * MIB, 1)
        kernel.madvise_willneed(BASE, BASE + 32 * MIB, 2)
        assert kernel.rss_bytes() == before
        assert kernel.swap.used_pages == 0


class TestSchemeRoundtripWithAttrs:
    @settings(max_examples=40, deadline=None)
    @given(
        sampling_ms=st.sampled_from([1, 5, 10]),
        aggr_mult=st.sampled_from([10, 20, 50]),
        raw_count=st.integers(min_value=0, max_value=10),
    )
    def test_raw_counts_resolve_against_any_attrs(self, sampling_ms, aggr_mult, raw_count):
        attrs = MonitorAttrs(
            sampling_interval_us=sampling_ms * MSEC,
            aggregation_interval_us=sampling_ms * aggr_mult * MSEC,
            regions_update_interval_us=sampling_ms * aggr_mult * 10 * MSEC,
        )
        scheme = parse_scheme(f"min max {raw_count} max min max pageout", attrs)
        expected = min(1.0, raw_count / attrs.max_nr_accesses)
        assert scheme.pattern.min_freq == pytest.approx(expected)
        # Round-trip through the text form preserves the resolved value.
        again = parse_scheme(format_scheme(scheme, attrs), attrs)
        assert again.pattern.min_freq == pytest.approx(expected, abs=1e-6)


class TestQuotaNeverOvercharges:
    @settings(max_examples=40, deadline=None)
    @given(
        charges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20 * MIB),
                st.integers(min_value=0, max_value=10),
            ),
            max_size=20,
        )
    )
    def test_window_budget_respected(self, charges):
        quota = Quota(size_bytes=8 * MIB, reset_interval_us=1 * SEC)
        window_charged = {}
        # The engine clock only moves forward; feeding the quota
        # out-of-order timestamps would roll its window back and forth
        # and overcharge — a scenario the simulator can never produce.
        charges = sorted(charges, key=lambda c: c[1])
        for nbytes, at_ds in charges:
            now = at_ds * 100 * MSEC
            window = now // SEC
            remaining = quota.remaining(now)
            take = min(nbytes, remaining)
            quota.charge(take, now)
            window_charged[window] = window_charged.get(window, 0) + take
        for window, total in window_charged.items():
            assert total <= 8 * MIB
