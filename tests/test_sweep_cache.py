"""Sweep cache: canonical serialization, content addressing, resume.

The golden tests pin the *exact* canonical encoding of a ``RunResult``
— silent schema drift (a renamed field, a changed float format, a
reordered key) must fail loudly here rather than poison caches.
"""

import json

import numpy as np
import pytest

from repro.monitor.snapshot import RegionSnapshot, Snapshot
from repro.runner.results import RunResult
from repro.sweep.cache import ResultCache, point_key
from repro.sweep.grid import SweepPoint
from repro.sweep.serialize import (
    canonical_json,
    decode_value,
    encode_value,
    fingerprint,
    result_fields,
)


def full_result() -> RunResult:
    """A RunResult with every field set to a distinctive value."""
    return RunResult(
        workload="parsec3/example",
        config="prcl",
        machine="i3.metal",
        seed=3,
        duration_us=1_000_000,
        runtime_us=1_234_567.875,
        avg_rss_bytes=12345.5,
        peak_rss_bytes=23456.0,
        avg_system_bytes=34567.25,
        final_rss_bytes=45678.0,
        final_system_bytes=56789.0,
        breakdown={"runtime": {"compute_us": 1.5}, "memory": 2.25},
        monitor_checks=42,
        monitor_cpu_us=77.5,
        scheme_stats={"0:pageout": {"nr_tried": 3, "sz_tried": 4096}},
        snapshots=[
            Snapshot(
                time_us=100,
                max_nr_accesses=20,
                regions=(
                    RegionSnapshot(0, 4096, 5, 2, 1),
                    RegionSnapshot(4096, 16384, 0, 9, 0),
                ),
            )
        ],
        wall_clock_us=98765.4321,
    )


class TestSerializationRoundTrip:
    def test_golden_field_by_field(self):
        original = full_result()
        decoded = decode_value(json.loads(canonical_json(encode_value(original))))
        assert isinstance(decoded, RunResult)
        original_fields = result_fields(original)
        decoded_fields = result_fields(decoded)
        assert set(original_fields) == set(decoded_fields)
        for name, value in original_fields.items():
            assert decoded_fields[name] == value, f"field {name} drifted"
        # Snapshots must come back as real Snapshot objects, not rows.
        assert isinstance(decoded.snapshots[0], Snapshot)
        assert decoded.snapshots[0].regions[1] == RegionSnapshot(4096, 16384, 0, 9, 0)

    def test_ndarray_and_tuple_round_trip(self):
        value = {
            "curve": np.linspace(0.0, 1.0, 5),
            "pair": (1, "two"),
            "grid": np.arange(6, dtype=np.int64).reshape(2, 3),
        }
        decoded = decode_value(json.loads(canonical_json(encode_value(value))))
        np.testing.assert_array_equal(decoded["curve"], value["curve"])
        np.testing.assert_array_equal(decoded["grid"], value["grid"])
        assert decoded["grid"].dtype == np.int64
        assert decoded["pair"] == (1, "two")

    def test_fingerprint_ignores_wall_clock_only(self):
        a, b = full_result(), full_result()
        b.wall_clock_us = 1.0  # a different host, a different day
        assert fingerprint(a) == fingerprint(b)
        b.runtime_us += 1.0  # any simulated difference must show
        assert fingerprint(a) != fingerprint(b)

    def test_encoding_is_canonical(self):
        assert canonical_json(encode_value(full_result())) == canonical_json(
            encode_value(full_result())
        )


class TestGoldenEncoding:
    """Pin the canonical text itself — the cache file format."""

    def test_small_result_exact_encoding(self):
        result = RunResult(
            workload="w",
            config="c",
            machine="m",
            seed=1,
            duration_us=10,
            runtime_us=2.5,
            avg_rss_bytes=3.0,
            peak_rss_bytes=4.0,
            avg_system_bytes=5.0,
        )
        expected = (
            '{"__daos__":"RunResult","fields":{'
            '"avg_rss_bytes":3.0,"avg_system_bytes":5.0,"breakdown":{},'
            '"config":"c","duration_us":10,"final_rss_bytes":0.0,'
            '"final_system_bytes":0.0,"machine":"m","monitor_checks":0,'
            '"monitor_cpu_us":0.0,"peak_rss_bytes":4.0,"runtime_us":2.5,'
            '"scheme_stats":{},"seed":1,"snapshots":null,'
            '"trace_summary":null,"wall_clock_us":0.0,"workload":"w"}}'
        )
        assert canonical_json(encode_value(result)) == expected

    def test_point_key_pinned(self):
        point = SweepPoint.make(
            "experiment", {"workload": "w", "config": "c", "seed": 0}
        )
        key = point_key(point, version_tag="test-tag")
        assert key == (
            "134f526fafe31d744bfeddaa22feb12c72492d5c9479a990e6f8750e"
            "cc4074ff"
        )


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        point = SweepPoint.make("experiment", {"workload": "w"})
        key = point_key(point, version_tag="t")
        result = full_result()
        cache.put(key, encode_value(result), point=point, meta={"wall_s": 1.5})
        value, meta = cache.get(key)
        assert result_fields(value) == result_fields(result)
        assert meta["wall_s"] == 1.5
        assert key in cache
        assert cache.count() == 1

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert "0" * 64 not in cache

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        assert cache.get(key) is None

    def test_wrong_key_in_payload_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key_a = "aa" + "0" * 62
        key_b = "aa" + "1" * 62
        cache.put(key_a, encode_value(1.0))
        # A file renamed to the wrong address must not be trusted.
        cache.path_for(key_a).rename(cache.path_for(key_b))
        assert cache.get(key_b) is None

    def test_version_tag_changes_key(self):
        point = SweepPoint.make("experiment", {"workload": "w"})
        assert point_key(point, "v1") != point_key(point, "v2")

    def test_params_change_key(self):
        a = SweepPoint.make("experiment", {"workload": "w", "seed": 0})
        b = SweepPoint.make("experiment", {"workload": "w", "seed": 1})
        assert point_key(a, "v") != point_key(b, "v")
