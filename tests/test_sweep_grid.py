"""Sweep grids: canonical expansion, derived seeds, validation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.sweep.grid import SweepGrid, SweepPoint, derive_seed


class TestSweepPoint:
    def test_params_are_canonicalised(self):
        a = SweepPoint.make("experiment", {"b": 1, "a": "x"})
        b = SweepPoint.make("experiment", {"a": "x", "b": 1})
        assert a == b
        assert a.items == (("a", "x"), ("b", 1))

    def test_rejects_non_scalar_values(self):
        with pytest.raises(ConfigError):
            SweepPoint.make("experiment", {"a": [1, 2]})
        with pytest.raises(ConfigError):
            SweepPoint.make("experiment", {"a": {"nested": 1}})

    def test_label_shows_identity_fields(self):
        point = SweepPoint.make(
            "experiment", {"workload": "w", "config": "rec", "time_scale": 0.1}
        )
        assert "workload=w" in point.label()
        assert "time_scale" not in point.label()


class TestFromAxes:
    def test_cross_product_in_axis_order(self):
        grid = SweepGrid.from_axes(
            "experiment",
            {"workload": ["a", "b"], "seed": [0, 1]},
            fixed={"machine": "i3.metal"},
        )
        combos = [(p.params["workload"], p.params["seed"]) for p in grid]
        assert combos == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]
        assert all(p.params["machine"] == "i3.metal" for p in grid)

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            SweepGrid.from_axes("experiment", {"workload": []})

    def test_duplicate_points_rejected(self):
        with pytest.raises(ConfigError):
            SweepGrid.from_points("experiment", [{"a": 1}, {"a": 1}])


class TestDerivedSeeds:
    def test_stable_pinned_values(self):
        # Pinned: a change here means every existing cache key built
        # from derived seeds silently shifted.
        assert derive_seed(0, {"workload": "x"}) == 1746341586
        assert derive_seed(0, {"workload": "x"}, replicate=1) == 96070341

    def test_explicit_seed_param_is_ignored_for_derivation(self):
        assert derive_seed(0, {"workload": "x"}) == derive_seed(
            0, {"workload": "x", "seed": 7}
        )

    @given(
        base=st.integers(0, 2**31 - 1),
        name=st.text(min_size=1, max_size=8),
        replicate=st.integers(0, 4),
    )
    def test_derived_seeds_deterministic_and_bounded(self, base, name, replicate):
        first = derive_seed(base, {"workload": name}, replicate)
        second = derive_seed(base, {"workload": name}, replicate)
        assert first == second
        assert 0 <= first < 2**31

    def test_replicated_assigns_distinct_seeds(self):
        grid = SweepGrid.from_axes("experiment", {"workload": ["a", "b"]})
        seeded = grid.replicated(3, base_seed=1)
        assert len(seeded) == 6
        seeds = [p.params["seed"] for p in seeded]
        assert len(set(seeds)) == 6  # decorrelated across points and replicates

    def test_replicated_rejects_explicit_seed(self):
        grid = SweepGrid.from_axes("experiment", {"workload": ["a"], "seed": [0]})
        with pytest.raises(ConfigError):
            grid.replicated(2)
