"""Determinism of sweep points: the same (workload, machine, config,
seed) point must produce a byte-identical ``RunResult`` whether it runs
in-process or in a pool worker, and across consecutive runs.

"Byte-identical" is checked through
:func:`~repro.sweep.serialize.fingerprint` — the SHA-256 of the
canonical encoding with host-time fields stripped — the same identity
the result cache is addressed by.
"""

import pytest

from repro.runner.experiment import run_experiment
from repro.sweep.grid import SweepGrid
from repro.sweep.runner import SweepRunner
from repro.sweep.serialize import fingerprint, result_fields

#: Small and fast, but exercising monitor + schemes + quota-less prcl
#: path ("prcl") and the recording path with snapshots ("rec").
POINTS = [
    dict(
        workload="parsec3/swaptions",
        config="prcl",
        machine="i3.metal",
        seed=5,
        time_scale=0.02,
    ),
    dict(
        workload="parsec3/swaptions",
        config="rec",
        machine="i3.metal",
        seed=5,
        time_scale=0.02,
    ),
]


@pytest.fixture(scope="module")
def grid():
    return SweepGrid.from_points("experiment", POINTS)


@pytest.fixture(scope="module")
def in_process_results():
    return [run_experiment(p["workload"], **{k: v for k, v in p.items() if k != "workload"}) for p in POINTS]


def test_consecutive_runs_identical(in_process_results):
    again = [
        run_experiment(
            p["workload"], **{k: v for k, v in p.items() if k != "workload"}
        )
        for p in POINTS
    ]
    for first, second in zip(in_process_results, again):
        assert fingerprint(first) == fingerprint(second)


def test_serial_sweep_matches_in_process(grid, in_process_results):
    report = SweepRunner(grid, jobs=1).run()
    assert report.n_failed == 0
    for outcome, direct in zip(report.outcomes, in_process_results):
        assert fingerprint(outcome.value) == fingerprint(direct)


def test_pool_sweep_matches_in_process(grid, in_process_results):
    report = SweepRunner(grid, jobs=2).run()
    assert report.n_failed == 0
    for outcome, direct in zip(report.outcomes, in_process_results):
        assert fingerprint(outcome.value) == fingerprint(direct)
        # Beyond the hash: every non-volatile field must match exactly.
        for name, value in result_fields(direct).items():
            if name == "wall_clock_us":
                continue
            assert result_fields(outcome.value)[name] == value, f"field {name}"


def test_wall_clock_is_recorded_but_not_identity(in_process_results):
    result = in_process_results[0]
    assert result.wall_clock_us > 0  # the new timing metric is populated
    assert result.sim_speedup > 0


def test_trace_summary_travels_through_sweep(grid, in_process_results):
    """Every sweep outcome carries the same trace roll-up the in-process
    run produced (the bus is deterministic), and the report can total
    event counts across points — yet the summary never enters the
    fingerprint (it is VOLATILE, like wall clock)."""
    report = SweepRunner(grid, jobs=1).run()
    totals = report.trace_event_totals()
    assert totals and all(v > 0 for v in totals.values())
    for outcome, direct in zip(report.outcomes, in_process_results):
        assert direct.trace_summary is not None
        assert outcome.value.trace_summary == direct.trace_summary
    # VOLATILE: fingerprints ignore it even when it differs.
    import copy

    mutated = copy.deepcopy(in_process_results[0])
    mutated.trace_summary = None
    assert fingerprint(mutated) == fingerprint(in_process_results[0])
