"""Kernel invariants under property testing: touch/map/reclaim storms.

The vectorized kernel keeps several pieces of redundant state in sync —
per-VMA page-table columns bound into the flat concatenated table,
incremental present/swapped counters, the frame table's owner arrays and
free stack, and the swap device's usage counter.  These tests drive a
seeded :class:`~repro.sim.kernel.SimKernel` through random storms of
touches (read and write), mmap/munmap churn, explicit pageouts, epoch
boundaries and khugepaged scans, checking after every step:

* **frame conservation** — allocated + free == total frames, and the
  allocated set is exactly the present-and-framed pages of the space;
* **present/swapped exclusivity** — no page is in DRAM and on swap at
  once, and the swap device's usage equals the swapped page count;
* **counter coherence** — the O(1) resident/swapped counters equal a
  fresh count of the underlying columns;
* **LRU ordering** — victim selection with the random tie-break off
  never evicts a page from a younger (lru_gen, scan-bucket) class while
  an older one survives;
* **THP eligibility** — khugepaged only collapses chunks that met the
  policy's present-page threshold, and huge chunks stay fully resident.

A final determinism check replays the same storm twice and requires
identical page-table state and metrics.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.kernel import SimKernel
from repro.sim.lru import LRU_SCAN_INTERVAL_US
from repro.sim.machine import GuestSpec, get_instance
from repro.sim.pagetable import PAGES_PER_HUGE
from repro.sim.swap import ZramDevice
from repro.sim.thp import ThpPolicy
from repro.units import MIB, MSEC

BASE = 0x7F00_0000_0000
EPOCH = 100 * MSEC

#: Extra-VMA slots the storm may map and unmap, away from the base VMA
#: (same shape as the layout-churn property tests).
SLOTS = [BASE + (i + 2) * 256 * MIB for i in range(4)]


def _fresh_kernel() -> SimKernel:
    guest = GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=64 * MIB)
    kernel = SimKernel(
        guest,
        swap=ZramDevice(32 * MIB),
        thp=ThpPolicy(mode="always"),
        seed=7,
        oom_policy="shed",
    )
    kernel.mmap(BASE, 32 * MIB)
    return kernel


# --- storm vocabulary -------------------------------------------------------
_touch = st.tuples(
    st.just("touch"),
    st.integers(-1, len(SLOTS) - 1),  # -1 = the base VMA
    st.floats(0.0, 0.9),              # start, as a fraction of the VMA
    st.sampled_from([1, 2, 4, 8]),    # span in MiB
    st.booleans(),                    # dirty the pages?
)
_map_toggle = st.tuples(
    st.just("map"), st.integers(0, len(SLOTS) - 1), st.sampled_from([4, 8, 16])
)
_pageout = st.tuples(
    st.just("pageout"), st.integers(-1, len(SLOTS) - 1), st.floats(0.0, 0.9)
)
_epoch = st.tuples(st.just("epoch"))
_scan = st.tuples(st.just("scan"))

ops = st.lists(
    st.one_of(_touch, _map_toggle, _pageout, _epoch, _scan),
    min_size=1,
    max_size=15,
)


def _vma_for(kernel, vmas, slot):
    if slot == -1:
        return kernel.space.vmas[0] if kernel.space.vmas else None
    return vmas.get(slot)


def _drive(kernel, storm, check=None):
    """Apply one storm, calling ``check(kernel, now)`` after every op."""
    vmas = {}
    now = 0
    for op in storm:
        kind = op[0]
        if kind == "touch":
            _, slot, frac, size_mib, write = op
            vma = _vma_for(kernel, vmas, slot)
            if vma is not None:
                start = vma.start + int(frac * vma.size) // 4096 * 4096
                end = min(vma.end, start + size_mib * MIB)
                kernel.apply_access(
                    start, end, now, EPOCH,
                    write_fraction=0.5 if write else 0.0,
                )
        elif kind == "map":
            _, slot, size_mib = op
            if slot in vmas:
                kernel.munmap(vmas.pop(slot))
            else:
                vmas[slot] = kernel.mmap(SLOTS[slot], size_mib * MIB)
        elif kind == "pageout":
            _, slot, frac = op
            vma = _vma_for(kernel, vmas, slot)
            if vma is not None:
                start = vma.start + int(frac * vma.size) // 4096 * 4096
                kernel.pageout(start, vma.end, now)
        elif kind == "epoch":
            kernel.end_epoch(now + EPOCH, compute_us=70_000)
            kernel.begin_epoch()
        elif kind == "scan":
            kernel.khugepaged_scan(now)
        now += EPOCH
        if check is not None:
            check(kernel, now)
    return now


# --- invariants -------------------------------------------------------------
def _check_conservation(kernel, now):
    frames = kernel.frames
    assert frames.allocated + frames.free_frames() == frames.n_frames
    live = frames.allocated_frames()
    assert live.size == frames.allocated
    assert (frames.owner_vma[live] >= 0).all()

    flat = kernel.space.flat
    framed = flat.present & (flat.frame >= 0)
    assert int(np.count_nonzero(framed)) == frames.allocated
    # Every owned frame points back at a present page that owns it.
    seg = kernel._ordinal_segments()[frames.owner_vma[live]]
    assert (seg >= 0).all(), "frame owned by an unmapped VMA"
    back = flat.page_offset[seg] + frames.owner_page[live]
    assert np.array_equal(np.sort(flat.frame[back]), np.sort(live))


def _check_exclusivity(kernel, now):
    flat = kernel.space.flat
    assert not (flat.present & flat.swapped).any()
    swapped = int(np.count_nonzero(flat.swapped))
    assert swapped == kernel.swap.used_pages


def _check_counters(kernel, now):
    for vma in kernel.space.vmas:
        pt = vma.pages
        assert pt.resident_pages() == int(np.count_nonzero(pt.present))
        assert pt.swapped_pages() == int(np.count_nonzero(pt.swapped))


def _check_huge_residency(kernel, now):
    flat = kernel.space.flat
    if flat.n_chunks and flat.chunk_huge.any():
        counts = flat.chunk_present_counts()
        assert (counts[flat.chunk_huge] == PAGES_PER_HUGE).all()


def _check_all(kernel, now):
    _check_conservation(kernel, now)
    _check_exclusivity(kernel, now)
    _check_counters(kernel, now)
    _check_huge_residency(kernel, now)


@given(storm=ops)
@settings(max_examples=40, deadline=None)
def test_invariants_survive_churn(storm):
    kernel = _fresh_kernel()
    _drive(kernel, storm, check=_check_all)


@given(storm=ops, n_pages=st.integers(1, 4096))
@settings(max_examples=40, deadline=None)
def test_lru_ordering_respects_generations(storm, n_pages):
    """With the tie-break RNG off, no chosen victim may belong to a
    strictly younger (lru_gen, scan-bucket) class than a survivor."""
    kernel = _fresh_kernel()
    _drive(kernel, storm)
    flat = kernel.space.flat
    victims = kernel.lru.select_victims(n_pages, rng=None)
    if not victims:
        return
    chosen_stamps = []
    for vma, sel in victims:
        pt = vma.pages
        bucket = np.floor(pt.last_touch[sel].astype(np.float64) / LRU_SCAN_INTERVAL_US)
        chosen_stamps.append(bucket + pt.lru_gen[sel].astype(np.float64) * 1e12)
    chosen_stamps = np.concatenate(chosen_stamps)
    # Rebuild the evictable set the same way the reclaimer does.
    evictable = flat.present & (flat.frame >= 0)
    if flat.chunk_huge.any():
        evictable &= ~flat.huge_page_mask()
    stamps = np.floor(flat.last_touch.astype(np.float64) / LRU_SCAN_INTERVAL_US)
    stamps += flat.lru_gen.astype(np.float64) * 1e12
    chosen_count = sum(sel.size for _, sel in victims)
    assert chosen_count == min(n_pages, int(np.count_nonzero(evictable)))
    survivors = int(np.count_nonzero(evictable)) - chosen_count
    if survivors:
        survivor_stamps = np.sort(stamps[evictable])[chosen_count:]
        assert chosen_stamps.max() <= survivor_stamps.min() + 1e-9


@given(storm=ops)
@settings(max_examples=30, deadline=None)
def test_khugepaged_respects_threshold(storm):
    kernel = _fresh_kernel()
    now = _drive(kernel, storm)
    flat = kernel.space.flat
    if flat.n_chunks == 0:
        return
    before_counts = flat.chunk_present_counts().copy()
    before_huge = flat.chunk_huge.copy()
    kernel.khugepaged_scan(now)
    flat = kernel.space.flat
    newly_huge = flat.chunk_huge & ~before_huge
    threshold = kernel.thp_policy.min_present_pages
    assert (before_counts[newly_huge] >= threshold).all()
    _check_huge_residency(kernel, now)


@given(storm=ops)
@settings(max_examples=20, deadline=None)
def test_same_seed_storms_are_identical(storm):
    def run():
        kernel = _fresh_kernel()
        _drive(kernel, storm)
        flat = kernel.space.flat
        return (
            flat.present.tobytes(),
            flat.swapped.tobytes(),
            flat.dirty.tobytes(),
            flat.frame.tobytes(),
            flat.last_touch.tobytes(),
            flat.chunk_huge.tobytes(),
            kernel.metrics.minor_faults,
            kernel.metrics.major_faults,
            kernel.metrics.reclaim_evictions,
            kernel.swap.used_pages,
        )

    assert run() == run()
