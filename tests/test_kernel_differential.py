"""Differential proof: the vectorized kernel equals the frozen legacy one.

The kernel epoch loop was rewritten from per-VMA gather loops to
whole-table masked passes over the flat concatenated page table
(``AddressSpace.flat``), with the LRU reclaimer optionally sourcing its
candidates from the frame table when residency is sparse.  The refactor
claims *bit identity*: same seed, same workload, same machine → the same
``RunResult`` (modulo wall clock) and the same canonical trace stream.

These tests run every scenario through both kernels — the live
:class:`~repro.sim.kernel.SimKernel` and the pre-rewrite implementation
frozen in ``benchmarks/_legacy_kernel.py`` — via the real experiment
driver (``kernel_cls=``), and compare:

* the full ``RunResult`` field for field (``wall_clock_us`` excluded);
* the JSONL trace, byte for byte (event order, payloads, counts).

Scenario coverage spans the Figure 3 pattern components through the
registry workloads, plus custom pressure scenarios that force sustained
reclaim through both ``select_victims`` candidate routes: the sparse
frame-table route (table ≫ DRAM) and the dense whole-table mask route
(table ≈ DRAM).
"""

from __future__ import annotations

import dataclasses
import importlib.util
import io
from pathlib import Path

import pytest

from repro.runner.experiment import run_experiment
from repro.sim.machine import scaled_instance
from repro.trace import JsonlTraceSink, TraceBus
from repro.units import GIB, MIB, SEC
from repro.workloads.base import WorkloadSpec
from repro.workloads.patterns import CyclicSweep, Hotspot

_LEGACY_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / "_legacy_kernel.py"


def _load_legacy():
    spec = importlib.util.spec_from_file_location("_legacy_kernel", _LEGACY_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.LegacySimKernel


LegacySimKernel = _load_legacy()


def traced_run(kernel_cls=None, **kw):
    """One experiment with a full JSONL capture; returns (result, text)."""
    bus = TraceBus(ring_capacity=0)
    buffer = io.StringIO()
    bus.subscribe_all(JsonlTraceSink(buffer))
    if kernel_cls is not None:
        kw["kernel_cls"] = kernel_cls
    result = run_experiment(trace=bus, **kw)
    return result, buffer.getvalue()


def assert_identical(**kw):
    """Both kernels, same inputs: identical results and traces."""
    new_result, new_text = traced_run(**kw)
    old_result, old_text = traced_run(kernel_cls=LegacySimKernel, **kw)
    new_dict = dataclasses.asdict(new_result)
    old_dict = dataclasses.asdict(old_result)
    new_dict.pop("wall_clock_us")
    old_dict.pop("wall_clock_us")
    diverged = [k for k in new_dict if new_dict[k] != old_dict[k]]
    assert not diverged, (
        f"RunResult diverged in {diverged}: "
        + "; ".join(f"{k}: new={new_dict[k]!r} legacy={old_dict[k]!r}" for k in diverged)
    )
    assert new_text == old_text, "trace streams diverged"
    return new_result


#: (workload, config) pairs spanning the Fig 3 pattern components and
#: every monitoring configuration family: plain LRU, DAMON_RECLAIM,
#: khugepaged under thp=always, and the prcl scheme (PAGEOUT actions).
REGISTRY_CASES = [
    ("parsec3/freqmine", "baseline"),
    ("splash2x/ocean_ncp", "rec"),
    ("parsec3/canneal", "thp"),
    ("parsec3/dedup", "prcl"),
]


@pytest.mark.parametrize("workload,config", REGISTRY_CASES)
def test_registry_workloads_identical(workload, config):
    assert_identical(workload=workload, config=config, seed=3, time_scale=0.02)


def _pressure_spec(footprint: int, period_us: int, duration_us: int) -> WorkloadSpec:
    """A sweep that outgrows the guest's DRAM: sustained reclaim, every
    epoch, for the whole run."""
    return WorkloadSpec(
        name="pressure",
        suite="diff",
        footprint=footprint,
        duration_us=duration_us,
        components=(
            CyclicSweep(0, footprint - 16 * MIB, period_us=period_us, touches_per_sec=400),
            Hotspot(footprint - 4 * MIB, 4 * MIB),
        ),
    )


def test_sparse_pressure_identical():
    """Table ≫ DRAM: the reclaimer's frame-table candidate route."""
    result = assert_identical(
        workload=_pressure_spec(512 * MIB, 2 * SEC, 6 * SEC),
        config="baseline",
        machine=scaled_instance("i3.metal", dram_scale=1 / 1024),
        seed=11,
    )
    assert result.breakdown["reclaim_evictions"] > 0, "scenario never reclaimed"


def test_sparse_pressure_with_monitor_identical():
    """Same pressure under DAMON_RECLAIM: scheme pageouts interleave
    with watermark reclaim."""
    assert_identical(
        workload=_pressure_spec(512 * MIB, 2 * SEC, 6 * SEC),
        config="rec",
        machine=scaled_instance("i3.metal", dram_scale=1 / 1024),
        seed=11,
    )


def test_dense_pressure_identical():
    """Table ≈ DRAM: residency too dense for the frame route, so the
    whole-table mask route selects victims."""
    result = assert_identical(
        workload=_pressure_spec(48 * MIB, 2 * SEC, 6 * SEC),
        config="baseline",
        machine=scaled_instance("i3.metal", dram_scale=1 / 8192),
        seed=11,
    )
    assert result.breakdown["reclaim_evictions"] > 0, "scenario never reclaimed"


def test_thp_pressure_identical():
    """khugepaged bloat pushing against small DRAM: promotions, huge
    skips in reclaim, and shed-mode OOM handling all match."""
    fp = 192 * MIB
    spec = WorkloadSpec(
        name="thp-pressure",
        suite="diff",
        footprint=fp,
        duration_us=6 * SEC,
        components=(
            CyclicSweep(0, fp - 16 * MIB, period_us=4 * SEC, touches_per_sec=400),
            Hotspot(fp - 4 * MIB, 4 * MIB),
        ),
    )
    assert_identical(
        workload=spec,
        config="thp",
        machine=scaled_instance("i3.metal", dram_scale=1 / 2048),
        seed=7,
        oom_policy="shed",
    )


def test_file_swap_identical():
    """The big-table bench scenario shape (file swap, deep sweep), small."""
    assert_identical(
        workload=_pressure_spec(1 * GIB, 8 * SEC, 4 * SEC),
        config="baseline",
        machine=scaled_instance("i3.metal", dram_scale=1 / 2048),
        seed=5,
        swap="file",
    )
