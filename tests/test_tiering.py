"""The tiered-memory backend: two-pool frames, migration, demotion.

The contract under test, end to end:

* the :class:`FrameTable` two-pool split — fast frames precede slow
  frames, ``allocated`` stays the cross-tier total, and frame numbers
  alone encode tier;
* ``migrate_cold`` / ``migrate_hot`` (the MIGRATE_* scheme back-ends)
  move resident pages between tiers, capped by slow-tier room and the
  DRAM high watermark respectively, and are no-ops on a flat machine;
* reclaim **demotes before it swaps**: while the slow tier has free
  frames, DRAM pressure moves pages down instead of out (the ISSUE's
  acceptance criterion), and swap only takes the overflow;
* the unmanaged policy spills faults into the slow tier and never
  migrates — the Memos-style baseline;
* the sanitizer's tier checkers hold on live kernels and actually fire
  on corrupted ones;
* a seeded tiered experiment is byte-identical across runs, sanitizer
  attached.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import AddressSpaceError, ConfigError
from repro.fleet import FleetConfig, FleetScheduler, run_fleet_naive
from repro.runner.experiment import build_machine, run_experiment
from repro.sanitize.checkers import check_frame_conservation, check_tier_placement
from repro.schemes.actions import Action, apply_action
from repro.sim.kernel import SimKernel
from repro.sim.machine import GuestSpec, TierSpec, get_instance, scaled_instance
from repro.sim.pagetable import PAGE_SIZE
from repro.sim.physmem import FrameTable
from repro.sim.swap import ZramDevice
from repro.trace import JsonlTraceSink, TraceBus
from repro.trace.events import TierMigration
from repro.units import MIB, MSEC, SEC
from repro.workloads.base import WorkloadSpec
from repro.workloads.patterns import ColdInit

from tests.helpers import BASE

EPOCH = 100 * MSEC


def make_tier(capacity=64 * MIB):
    return TierSpec(
        name="test-tier",
        capacity_bytes=capacity,
        access_latency_ns=300.0,
        read_us=0.5,
        write_us=1.5,
    )


def tiered_kernel(dram=16 * MIB, slow=64 * MIB, policy="managed", seed=7):
    guest = GuestSpec(
        host=get_instance("i3.metal"),
        vcpus=4,
        dram_bytes=dram,
        slow_tier=make_tier(slow),
    )
    kernel = SimKernel(guest, swap=ZramDevice(64 * MIB), seed=seed)
    kernel.tier_policy = policy
    return kernel


def touch(kernel, start, end, now=0):
    kernel.apply_access(start, end, now=now, epoch_us=EPOCH)


def assert_clean(kernel):
    """The tier invariants hold on this live kernel."""
    assert check_frame_conservation(kernel, 0) == []
    assert check_tier_placement(kernel, 0) == []


# ----------------------------------------------------------------------
# FrameTable: the two-pool allocator
# ----------------------------------------------------------------------
class TestFrameTableTwoPool:
    def test_pools_partition_the_frame_space(self):
        ft = FrameTable(4 * MIB, 8 * MIB)
        assert ft.n_fast_frames == 4 * MIB // PAGE_SIZE
        assert ft.n_slow_frames == 8 * MIB // PAGE_SIZE
        assert ft.n_frames == ft.n_fast_frames + ft.n_slow_frames
        assert not ft.tier[: ft.n_fast_frames].any()
        assert ft.tier[ft.n_fast_frames :].all()

    def test_fast_and_slow_allocations_are_disjoint(self):
        ft = FrameTable(4 * MIB, 8 * MIB)
        fast = ft.allocate(10, 0, np.arange(10))
        slow = ft.allocate_slow(10, 0, np.arange(10, 20))
        assert fast.max() < ft.n_fast_frames
        assert slow.min() >= ft.n_fast_frames
        assert ft.allocated == 20
        assert ft.allocated_slow == 10
        assert ft.fast_allocated == 10

    def test_conservation_across_both_pools(self):
        ft = FrameTable(4 * MIB, 8 * MIB)
        ft.allocate(7, 0, np.arange(7))
        ft.allocate_slow(5, 0, np.arange(7, 12))
        assert ft.allocated + ft.free_frames() + ft.free_slow_frames() == ft.n_frames

    def test_release_returns_frames_to_their_own_pool(self):
        ft = FrameTable(4 * MIB, 8 * MIB)
        fast = ft.allocate(4, 0, np.arange(4))
        slow = ft.allocate_slow(4, 0, np.arange(4, 8))
        free_fast, free_slow = ft.free_frames(), ft.free_slow_frames()
        ft.release(np.concatenate([fast, slow]))
        assert ft.free_frames() == free_fast + 4
        assert ft.free_slow_frames() == free_slow + 4
        assert ft.allocated == 0 and ft.allocated_slow == 0
        # Recycled frames come back from the same pool they left.
        assert ft.allocate(4, 0, np.arange(4)).max() < ft.n_fast_frames
        assert ft.allocate_slow(4, 0, np.arange(4, 8)).min() >= ft.n_fast_frames

    def test_slow_pool_exhaustion_raises(self):
        ft = FrameTable(4 * MIB, PAGE_SIZE)
        ft.allocate_slow(1, 0, np.arange(1))
        with pytest.raises(AddressSpaceError):
            ft.allocate_slow(1, 0, np.arange(1, 2))

    def test_flat_table_has_no_slow_pool(self):
        ft = FrameTable(4 * MIB)
        assert ft.n_slow_frames == 0
        assert ft.free_slow_frames() == 0
        assert ft.free_frames() == ft.n_frames


# ----------------------------------------------------------------------
# migrate_cold / migrate_hot
# ----------------------------------------------------------------------
class TestMigrationOps:
    def test_cold_then_hot_roundtrip(self):
        k = tiered_kernel()
        k.mmap(BASE, 8 * MIB)
        touch(k, BASE, BASE + 8 * MIB)
        n = 8 * MIB // PAGE_SIZE

        demoted = k.migrate_cold(BASE, BASE + 8 * MIB, now=EPOCH)
        assert demoted == n
        flat = k.space.flat
        resident = flat.present & (flat.tier != 0)
        assert int(np.count_nonzero(resident)) == n
        assert (flat.frame[resident] >= k.frames.n_fast_frames).all()
        assert k.frames.allocated_slow == n
        assert k.metrics.pages_demoted == n
        assert k.metrics.runtime.tier_migration_us > 0
        assert_clean(k)

        promoted = k.migrate_hot(BASE, BASE + 8 * MIB, now=2 * EPOCH)
        assert promoted == n
        assert not (flat.present & (flat.tier != 0)).any()
        assert k.frames.allocated_slow == 0
        assert k.metrics.pages_promoted == n
        assert_clean(k)

    def test_flat_machine_is_a_noop(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        touch(kernel, BASE, BASE + 4 * MIB)
        assert kernel.migrate_cold(BASE, BASE + 4 * MIB, now=0) == 0
        assert kernel.migrate_hot(BASE, BASE + 4 * MIB, now=0) == 0
        assert kernel.metrics.pages_demoted == 0
        assert kernel.metrics.pages_promoted == 0

    def test_cold_capped_by_slow_room(self):
        k = tiered_kernel(slow=MIB)
        k.mmap(BASE, 8 * MIB)
        touch(k, BASE, BASE + 8 * MIB)
        assert k.migrate_cold(BASE, BASE + 8 * MIB, now=0) == MIB // PAGE_SIZE
        assert k.frames.free_slow_frames() == 0
        # The tier is full: another pass moves nothing.
        assert k.migrate_cold(BASE, BASE + 8 * MIB, now=EPOCH) == 0
        assert_clean(k)

    def test_hot_stops_at_the_high_watermark(self):
        k = tiered_kernel()
        k.mmap(BASE, 24 * MIB)
        touch(k, BASE, BASE + 8 * MIB)
        assert k.migrate_cold(BASE, BASE + 8 * MIB, now=0) == 8 * MIB // PAGE_SIZE
        # Fill DRAM to just under capacity so promotion headroom is thin.
        touch(k, BASE + 8 * MIB, BASE + 20 * MIB, now=EPOCH)
        frames = k.frames
        high = k.watermarks.high_frames(frames.n_fast_frames)
        room = max(0, high - frames.fast_allocated)
        assert room < 8 * MIB // PAGE_SIZE  # the gate is actually binding
        promoted = k.migrate_hot(BASE, BASE + 8 * MIB, now=2 * EPOCH)
        assert promoted == room
        assert frames.fast_allocated <= high
        assert_clean(k)

    def test_migration_counts_on_the_trace_bus(self):
        bus = TraceBus(ring_capacity=0)
        guest = GuestSpec(
            host=get_instance("i3.metal"),
            vcpus=4,
            dram_bytes=16 * MIB,
            slow_tier=make_tier(),
        )
        k = SimKernel(guest, swap=ZramDevice(64 * MIB), seed=7, trace=bus)
        k.mmap(BASE, 4 * MIB)
        touch(k, BASE, BASE + 4 * MIB)
        k.migrate_cold(BASE, BASE + 4 * MIB, now=0)
        k.migrate_hot(BASE, BASE + 4 * MIB, now=EPOCH)
        assert bus.counts.get(TierMigration.kind, 0) == 2

    def test_scheme_actions_dispatch_to_the_kernel_ops(self):
        k = tiered_kernel()
        k.mmap(BASE, 4 * MIB)
        touch(k, BASE, BASE + 4 * MIB)
        assert Action.parse("migrate_cold") is Action.MIGRATE_COLD
        assert Action.parse("migrate_hot") is Action.MIGRATE_HOT
        moved = apply_action(k, Action.MIGRATE_COLD, BASE, BASE + 4 * MIB, 0)
        assert moved == 4 * MIB
        assert apply_action(k, Action.MIGRATE_HOT, BASE, BASE + 4 * MIB, 0) == 4 * MIB


# ----------------------------------------------------------------------
# Reclaim policy: demote before swap; unmanaged spills
# ----------------------------------------------------------------------
class TestDemoteBeforeSwap:
    def test_pressure_demotes_instead_of_swapping(self):
        """The acceptance criterion: while the slow tier has room, no
        page reaches swap."""
        k = tiered_kernel(dram=16 * MIB, slow=64 * MIB)
        k.mmap(BASE, 48 * MIB)
        for i in range(6):
            touch(k, BASE + i * 8 * MIB, BASE + (i + 1) * 8 * MIB, now=i * EPOCH)
        assert k.metrics.pages_demoted > 0
        assert k.metrics.pages_swapped_out == 0
        assert k.swap.used_pages == 0
        assert k.frames.free_slow_frames() > 0
        # Everything is still resident, just spread across tiers.
        flat = k.space.flat
        assert int(np.count_nonzero(flat.present)) == 48 * MIB // PAGE_SIZE
        assert_clean(k)

    def test_swap_takes_the_overflow_once_the_tier_fills(self):
        k = tiered_kernel(dram=16 * MIB, slow=8 * MIB)
        k.mmap(BASE, 48 * MIB)
        for i in range(6):
            touch(k, BASE + i * 8 * MIB, BASE + (i + 1) * 8 * MIB, now=i * EPOCH)
        assert k.frames.free_slow_frames() == 0
        assert k.metrics.pages_demoted == 8 * MIB // PAGE_SIZE
        assert k.metrics.pages_swapped_out > 0
        assert_clean(k)

    def test_reclaim_never_victimises_slow_pages(self):
        """Managed demotion moves DRAM pages down; pages already in the
        slow tier stay put under further DRAM pressure."""
        k = tiered_kernel(dram=16 * MIB, slow=64 * MIB)
        k.mmap(BASE, 32 * MIB)
        for i in range(4):
            touch(k, BASE + i * 8 * MIB, BASE + (i + 1) * 8 * MIB, now=i * EPOCH)
        demoted_once = k.metrics.pages_demoted
        assert demoted_once > 0
        slow_before = k.space.flat.frame[k.space.flat.tier != 0].copy()
        touch(k, BASE, BASE + 8 * MIB, now=5 * EPOCH)
        touch(k, BASE + 8 * MIB, BASE + 16 * MIB, now=6 * EPOCH)
        slow_now = k.space.flat.frame[k.space.flat.tier != 0]
        # Slow residency can only have grown; earlier demotions were not
        # re-victimised into swap.
        assert k.metrics.pages_swapped_out == 0
        assert np.isin(slow_before, slow_now).all() or k.metrics.pages_promoted > 0
        assert_clean(k)


class TestUnmanagedSpill:
    def test_faults_spill_and_nothing_migrates(self):
        k = tiered_kernel(dram=16 * MIB, slow=64 * MIB, policy="unmanaged")
        k.mmap(BASE, 48 * MIB)
        for i in range(6):
            touch(k, BASE + i * 8 * MIB, BASE + (i + 1) * 8 * MIB, now=i * EPOCH)
        assert k.frames.allocated_slow > 0
        assert k.metrics.pages_demoted == 0
        assert k.metrics.pages_promoted == 0
        assert k.metrics.pages_swapped_out == 0
        assert_clean(k)

    def test_spill_keeps_first_touch_placement(self):
        """Whatever faulted first owns DRAM — the stranding the managed
        policy exists to fix."""
        k = tiered_kernel(dram=16 * MIB, slow=64 * MIB, policy="unmanaged")
        k.mmap(BASE, 32 * MIB)
        touch(k, BASE, BASE + 32 * MIB)
        flat = k.space.flat
        first = flat.present & (flat.tier == 0)
        assert int(np.count_nonzero(first)) == k.frames.n_fast_frames
        # Re-touching the spilled half moves nothing in unmanaged mode.
        spilled = (flat.tier != 0).copy()
        touch(k, BASE + 16 * MIB, BASE + 32 * MIB, now=EPOCH)
        assert (flat.tier[spilled] != 0).all()
        assert k.metrics.pages_promoted == 0
        assert_clean(k)


# ----------------------------------------------------------------------
# Sanitizer: the tier checkers fire on corruption
# ----------------------------------------------------------------------
class TestTierSanitizer:
    def _pressured(self):
        k = tiered_kernel(dram=16 * MIB, slow=64 * MIB)
        k.mmap(BASE, 32 * MIB)
        for i in range(4):
            touch(k, BASE + i * 8 * MIB, BASE + (i + 1) * 8 * MIB, now=i * EPOCH)
        assert k.metrics.pages_demoted > 0
        return k

    def test_live_kernel_is_clean(self):
        assert_clean(self._pressured())

    def test_tier_column_mismatch_detected(self):
        k = self._pressured()
        flat = k.space.flat
        idx = int(np.nonzero(flat.present & (flat.tier == 0))[0][0])
        flat.tier[idx] = 1  # claims slow residency, frame says DRAM
        assert check_tier_placement(k, 0) != []

    def test_stray_tier_mark_on_nonpresent_page_detected(self):
        k = self._pressured()
        k.mmap(BASE + 64 * MIB, MIB)  # mapped but never touched
        flat = k.space.flat
        idx = int(np.nonzero(~flat.present)[0][0])
        flat.tier[idx] = 1
        assert check_tier_placement(k, 0) != []

    def test_slow_count_drift_detected(self):
        k = self._pressured()
        k.frames.allocated_slow += 1
        assert (
            check_tier_placement(k, 0) != [] or check_frame_conservation(k, 0) != []
        )

    def test_flat_kernel_skips_tier_checks(self, kernel):
        kernel.mmap(BASE, 4 * MIB)
        touch(kernel, BASE, BASE + 4 * MIB)
        assert check_tier_placement(kernel, 0) == []


# ----------------------------------------------------------------------
# Determinism: seeded tiered runs are byte-identical, sanitizer on
# ----------------------------------------------------------------------
#: 32 MiB footprint against a 16 MiB-DRAM guest with a 64 MiB slow
#: tier: cold init overruns DRAM, so reclaim demotes from the start.
_DET_WORKLOAD = WorkloadSpec(
    name="tiering-determinism",
    suite="test",
    footprint=32 * MIB,
    duration_us=2 * SEC,
    components=(ColdInit(offset=0, size=32 * MIB, init_us=1 * SEC),),
)


def _traced_tiered_run():
    bus = TraceBus(ring_capacity=0)
    buffer = io.StringIO()
    bus.subscribe_all(JsonlTraceSink(buffer))
    result = run_experiment(
        _DET_WORKLOAD,
        machine=scaled_instance("i3.metal", dram_scale=1 / 2048),
        tier="cxl-dram",
        tier_scale=1 / 4096,
        seed=11,
        trace=bus,
        sanitize=True,
    )
    return buffer.getvalue(), bus, result


class TestTieredDeterminism:
    def test_same_seed_byte_identical_trace(self):
        text_a, bus_a, result_a = _traced_tiered_run()
        text_b, bus_b, result_b = _traced_tiered_run()
        assert text_a == text_b
        assert bus_a.summary() == bus_b.summary()
        assert result_a.breakdown == result_b.breakdown

    def test_tiered_run_actually_migrates(self):
        text, bus, result = _traced_tiered_run()
        assert bus.counts.get(TierMigration.kind, 0) > 0
        assert result.breakdown["pages_demoted"] > 0
        assert result.breakdown["pages_swapped_out"] == 0


# ----------------------------------------------------------------------
# Builders, fleet gating
# ----------------------------------------------------------------------
class TestBuilders:
    def test_build_machine_threads_the_tier(self):
        mb = build_machine("i3.metal", tier="cxl-dram", tier_scale=1 / 4096)
        assert mb.guest.slow_tier is not None
        assert mb.guest.slow_tier.capacity_bytes == 64 * MIB
        assert mb.tier_policy == "managed"

    def test_build_machine_flat_by_default(self):
        assert build_machine("i3.metal").guest.slow_tier is None

    def test_bad_tier_policy_rejected(self):
        with pytest.raises(ConfigError):
            build_machine("i3.metal", tier="cxl-dram", tier_policy="bogus")

    def test_batched_fleet_rejects_tiers(self):
        cfg = FleetConfig(
            n_tenants=4,
            duration_s=10.0,
            footprint_mib=8,
            arrival_window_s=1.0,
            tier="cxl-dram",
        )
        with pytest.raises(ConfigError, match="naive"):
            FleetScheduler(cfg)

    def test_naive_fleet_threads_the_tier(self):
        cfg = FleetConfig(
            n_tenants=2,
            duration_s=5.0,
            footprint_mib=8,
            arrival_window_s=1.0,
            tier="cxl-dram",
            tier_scale=1 / 1024,
        )
        results = run_fleet_naive(cfg, limit=1)
        assert len(results) == 1
        assert "pages_demoted" in results[0].breakdown
