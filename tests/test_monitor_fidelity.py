"""Regression tests for the monitor hot-path fidelity fixes.

Three real bugs, each with a test that fails on the pre-fix code:

1. **Lost sampling check** — ``aggregate_tick`` used to end by clearing
   the sampling state, so the first sampling tick of every aggregation
   interval only *prepared* and the observable access-count ceiling was
   ``aggregation/sampling − 1``, never the ``attrs.max_nr_accesses``
   the schemes engine quantizes against.
2. **Dropped address-space slivers** — ``regions_intersecting`` used to
   silently discard sub-``MIN_REGION_SIZE`` pieces (clipped survivors
   and gap fills), so after layout churn the region list stopped tiling
   the target ranges: mapped bytes left monitoring forever.
3. **Silent zip truncation** — the counter-publish step used to
   ``zip()`` regions with the accumulator arrays; a length divergence
   (a callback mutating the region list mid-interval) dropped counts
   without any error instead of raising ``MonitorStateError``.
"""

import numpy as np
import pytest

from repro.errors import MonitorStateError
from repro.monitor.attrs import MonitorAttrs
from repro.monitor.core import DataAccessMonitor
from repro.monitor.primitives import MonitoringPrimitive
from repro.monitor.region import MIN_REGION_SIZE, Region, regions_intersecting
from repro.sim.clock import EventQueue
from repro.units import MIB, MSEC

from tests.helpers import BASE

K = MIN_REGION_SIZE

ATTRS = MonitorAttrs(
    sampling_interval_us=1 * MSEC,
    aggregation_interval_us=20 * MSEC,
    regions_update_interval_us=200 * MSEC,
    min_nr_regions=5,
    max_nr_regions=100,
)


class SaturatingPrimitive(MonitoringPrimitive):
    """Every sample check hits: the ceiling-probing workload."""

    name = "vaddr"

    def __init__(self, ranges):
        self._ranges = list(ranges)

    def target_ranges(self):
        return list(self._ranges)

    def layout_generation(self):
        return 0

    def access_probabilities(self, addrs, window_us):
        return np.ones(len(addrs))

    def write_probabilities(self, addrs, window_us):
        return np.zeros(len(addrs))

    def charge_checks(self, n_checks, wakeups=1):
        return None


# ----------------------------------------------------------------------
# Fix 1: the full complement of checks lands every aggregation interval
# ----------------------------------------------------------------------
class TestSamplingCheckNotLost:
    def test_saturating_workload_reaches_max_nr_accesses(self):
        """A region whose sample page is always hot must read exactly
        ``attrs.max_nr_accesses`` — with the lost-check bug the maximum
        observable count was ``max_nr_accesses - 1`` forever."""
        monitor = DataAccessMonitor(
            SaturatingPrimitive([(BASE, BASE + 4 * MIB)]), ATTRS, seed=3
        )
        queue = EventQueue()
        maxima = []
        monitor.register_callback(
            lambda snap: maxima.append(max(r.nr_accesses for r in snap.regions))
        )
        monitor.start(queue)
        queue.run_for(4 * ATTRS.aggregation_interval_us)
        assert len(maxima) >= 3
        # From the second interval on, every interval carries its full
        # aggregation/sampling checks.
        assert max(maxima) == ATTRS.max_nr_accesses
        assert all(m == ATTRS.max_nr_accesses for m in maxima[1:])

    def test_counts_never_exceed_the_ceiling(self):
        """The fix must not overshoot: the ceiling stays a ceiling."""
        monitor = DataAccessMonitor(
            SaturatingPrimitive([(BASE, BASE + 4 * MIB)]), ATTRS, seed=4
        )
        queue = EventQueue()
        seen = []
        monitor.register_raw_callback(
            lambda mon, now: seen.extend(r.nr_accesses for r in mon.regions)
        )
        monitor.start(queue)
        queue.run_for(6 * ATTRS.aggregation_interval_us)
        assert seen
        assert max(seen) <= ATTRS.max_nr_accesses


# ----------------------------------------------------------------------
# Fix 2: layout clipping never drops bytes
# ----------------------------------------------------------------------
def _counted(start, end, nr=7, last=5, age=3, writes=2):
    region = Region(start, end)
    region.nr_accesses = nr
    region.last_nr_accesses = last
    region.age = age
    region.nr_writes = writes
    return region


class TestRegionsIntersectingTiling:
    def test_sub_min_gap_sliver_is_absorbed_not_dropped(self):
        """A sub-page hole between two survivors used to vanish from
        monitoring; now the next region extends down over it."""
        regions = [_counted(0, K, nr=1), _counted(K + K // 2, 3 * K, nr=9)]
        ranges = [(0, 3 * K)]
        out = regions_intersecting(regions, ranges)
        assert sum(r.size for r in out) == 3 * K  # tiling: no lost bytes
        covering = next(r for r in out if r.start <= K + K // 2 < r.end)
        assert covering.start == K  # extended over the sliver
        assert covering.nr_accesses == 9  # keeping its own counters

    def test_sub_min_clipped_survivor_is_absorbed_not_dropped(self):
        """A survivor clipped below the minimum size used to be
        discarded (with its bytes); now the previous region extends over
        it."""
        regions = [_counted(0, K, nr=4), _counted(K, 2 * K, nr=8)]
        ranges = [(0, K + K // 4)]
        out = regions_intersecting(regions, ranges)
        assert sum(r.size for r in out) == K + K // 4
        assert len(out) == 1
        assert (out[0].start, out[0].end) == (0, K + K // 4)
        assert out[0].nr_accesses == 4

    def test_aligned_layouts_unchanged(self):
        """Page-aligned clipping (the common case) behaves exactly as
        before: survivors keep counters, uncovered space gets fresh
        regions."""
        regions = [_counted(0, 2 * K, nr=6), _counted(2 * K, 4 * K, nr=2)]
        ranges = [(K, 6 * K)]
        out = regions_intersecting(regions, ranges)
        assert [(r.start, r.end) for r in out] == [(K, 2 * K), (2 * K, 4 * K), (4 * K, 6 * K)]
        assert [r.nr_accesses for r in out] == [6, 2, 0]

    def test_whole_range_below_minimum_is_skipped(self):
        assert regions_intersecting([_counted(0, K)], [(0, K // 2)]) == []

    def test_monitor_invariants_include_tiling(self):
        """check_invariants now asserts the region list covers the
        target ranges byte for byte."""
        monitor = DataAccessMonitor(
            SaturatingPrimitive([(BASE, BASE + 16 * MIB)]), ATTRS, seed=1
        )
        monitor.init_regions()
        monitor.check_invariants()  # tiles after init
        monitor.regions = monitor.regions[:-1]  # break the tiling
        with pytest.raises(MonitorStateError, match="tile"):
            monitor.check_invariants()


# ----------------------------------------------------------------------
# Fix 3: counter publish fails loudly on length divergence
# ----------------------------------------------------------------------
class TestCounterPublishStrict:
    def _monitor(self):
        monitor = DataAccessMonitor(primitive=None, attrs=ATTRS, seed=2)
        monitor.regions = [Region(0, K), Region(K, 2 * K), Region(2 * K, 3 * K)]
        return monitor

    def test_short_accumulator_raises_with_both_lengths(self):
        monitor = self._monitor()
        monitor._acc = np.zeros(2, dtype=np.int64)  # a callback "ate" a region
        with pytest.raises(MonitorStateError, match=r"3 regions.*2 access"):
            monitor.aggregate_tick(ATTRS.aggregation_interval_us)

    def test_long_write_accumulator_raises(self):
        monitor = self._monitor()
        monitor._wacc = np.zeros(5, dtype=np.int64)
        with pytest.raises(MonitorStateError, match=r"5 write"):
            monitor.aggregate_tick(ATTRS.aggregation_interval_us)

    def test_matching_lengths_publish_cleanly(self):
        monitor = self._monitor()
        monitor._acc = np.array([1, 2, 3], dtype=np.int64)
        published = []
        monitor.register_raw_callback(
            lambda mon, now: published.extend(r.nr_accesses for r in mon.regions)
        )
        monitor.aggregate_tick(ATTRS.aggregation_interval_us)
        # Merge may fold the similar-count neighbours; the weighted
        # averages still come from the published values.
        assert published
        assert min(published) >= 1
