"""Swap devices: ZRAM, file-backed, and the no-swap sentinel."""

import pytest

from repro.errors import ConfigError, SwapFullError
from repro.sim.pagetable import PAGE_SIZE
from repro.sim.swap import FileSwapDevice, NoSwapDevice, ZramDevice
from repro.units import GIB, MIB


class TestAccounting:
    def test_store_and_load(self):
        dev = ZramDevice(4 * MIB)
        dev.store(100)
        assert dev.used_pages == 100
        dev.load(40)
        assert dev.used_pages == 60
        assert dev.total_outs == 100
        assert dev.total_ins == 40

    def test_capacity_enforced(self):
        dev = ZramDevice(4 * MIB)  # 1024 slots
        dev.store(1024)
        with pytest.raises(SwapFullError):
            dev.store(1)

    def test_free_pages(self):
        dev = ZramDevice(4 * MIB)
        dev.store(100)
        assert dev.free_pages() == 1024 - 100

    def test_load_more_than_stored_rejected(self):
        dev = ZramDevice(4 * MIB)
        dev.store(10)
        with pytest.raises(SwapFullError):
            dev.load(11)

    def test_discard(self):
        dev = ZramDevice(4 * MIB)
        dev.store(10)
        dev.discard(4)
        assert dev.used_pages == 6
        # discard has no read-side accounting
        assert dev.total_ins == 0

    def test_discard_too_many_rejected(self):
        dev = ZramDevice(4 * MIB)
        with pytest.raises(SwapFullError):
            dev.discard(1)

    def test_negative_counts_rejected(self):
        dev = ZramDevice(4 * MIB)
        with pytest.raises(ConfigError):
            dev.store(-1)
        with pytest.raises(ConfigError):
            dev.load(-1)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ConfigError):
            ZramDevice(PAGE_SIZE - 1)


class TestZram:
    def test_latencies(self):
        dev = ZramDevice(4 * MIB, compress_us_per_page=4.0, decompress_us_per_page=2.0)
        assert dev.store(100) == 400
        assert dev.load(100) == 200

    def test_dram_overhead_follows_ratio(self):
        dev = ZramDevice(4 * MIB, compression_ratio=4.0)
        dev.store(100)
        assert dev.dram_overhead_bytes() == int(100 * PAGE_SIZE / 4.0)

    def test_dram_overhead_shrinks_on_load(self):
        dev = ZramDevice(4 * MIB)
        dev.store(100)
        before = dev.dram_overhead_bytes()
        dev.load(50)
        assert dev.dram_overhead_bytes() == pytest.approx(before / 2, abs=1)

    def test_ratio_below_one_rejected(self):
        with pytest.raises(ConfigError):
            ZramDevice(4 * MIB, compression_ratio=0.5)

    def test_default_capacity_is_paper_4gib(self):
        assert ZramDevice().capacity_pages == 4 * GIB // PAGE_SIZE


class TestFileSwap:
    def test_latencies(self):
        dev = FileSwapDevice(4 * MIB, read_us_per_page=90.0, write_us_per_page=10.0)
        assert dev.store(10) == 100
        assert dev.load(10) == 900

    def test_no_dram_overhead(self):
        dev = FileSwapDevice(4 * MIB)
        dev.store(100)
        assert dev.dram_overhead_bytes() == 0

    def test_reads_cost_more_than_writes(self):
        dev = FileSwapDevice(4 * MIB)
        assert dev.read_us > dev.write_us


class TestNoSwap:
    def test_always_full(self):
        dev = NoSwapDevice()
        assert dev.free_pages() == 0
        with pytest.raises(SwapFullError):
            dev.store(1)

    def test_zero_store_allowed(self):
        NoSwapDevice().store(0)
