"""The DAMON_RECLAIM / DAMON_LRU_SORT module analogs."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.modules.lru_sort import LruSortModule, LruSortParams
from repro.modules.reclaim import ReclaimModule, ReclaimParams
from repro.monitor.attrs import MonitorAttrs
from repro.schemes.actions import Action
from repro.sim.clock import EventQueue
from repro.sim.kernel import SimKernel
from repro.sim.machine import GuestSpec, get_instance
from repro.sim.swap import ZramDevice
from repro.units import MIB, MSEC, SEC

from tests.helpers import BASE, run_epochs

FAST = MonitorAttrs(
    sampling_interval_us=1 * MSEC,
    aggregation_interval_us=20 * MSEC,
    regions_update_interval_us=200 * MSEC,
    min_nr_regions=10,
    max_nr_regions=200,
)


def make_kernel(dram_mib=256, swap_mib=128, seed=7):
    guest = GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=dram_mib * MIB)
    return SimKernel(guest, swap=ZramDevice(swap_mib * MIB), seed=seed)


class TestReclaimParams:
    def test_defaults_sane(self):
        params = ReclaimParams()
        assert params.min_age_us == 20 * SEC
        assert params.wmarks_low < params.wmarks_mid < params.wmarks_high

    def test_validation(self):
        with pytest.raises(ConfigError):
            ReclaimParams(min_age_us=-1)
        with pytest.raises(ConfigError):
            ReclaimParams(quota_sz_bytes=0)


class TestReclaimModule:
    def test_inactive_without_pressure(self, queue):
        """Plenty of free memory: the watermarks keep the module off and
        nothing is reclaimed."""
        kernel = make_kernel(dram_mib=256)
        kernel.mmap(BASE, 64 * MIB)
        module = ReclaimModule(kernel, ReclaimParams(min_age_us=100 * MSEC), FAST)
        module.start(queue)
        kernel.apply_access(BASE, BASE + 32 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(kernel, queue, [], n_epochs=20)
        assert not module.active
        assert module.stats()["reclaimed_bytes"] == 0
        assert kernel.rss_bytes() == 32 * MIB

    def test_reclaims_under_pressure(self, queue):
        """Free memory below the mid watermark: cold memory goes out."""
        kernel = make_kernel(dram_mib=64, swap_mib=128)
        kernel.mmap(BASE, 64 * MIB)
        module = ReclaimModule(kernel, ReclaimParams(min_age_us=200 * MSEC), FAST)
        module.start(queue)
        # Fill ~70% of DRAM once (cold), keep 4 MiB hot.
        kernel.apply_access(BASE, BASE + 44 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 4 * MIB, touches_per_page=2000)],
            n_epochs=30,
        )
        stats = module.stats()
        assert stats["reclaimed_bytes"] > 8 * MIB
        # The hot head stays resident.
        assert kernel.space.vmas[0].pages.present[:1024].all()

    def test_deactivates_when_pressure_relieved(self, queue):
        kernel = make_kernel(dram_mib=64, swap_mib=128)
        kernel.mmap(BASE, 64 * MIB)
        module = ReclaimModule(kernel, ReclaimParams(min_age_us=200 * MSEC), FAST)
        module.start(queue)
        kernel.apply_access(BASE, BASE + 44 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(kernel, queue, [], n_epochs=40)
        # Once enough was reclaimed, free memory rises above high and the
        # module turns itself off.
        free_ratio = kernel.frames.free_frames() / kernel.frames.n_frames
        if free_ratio > module.params.wmarks_high:
            assert not module.active

    def test_stop(self, queue):
        kernel = make_kernel()
        kernel.mmap(BASE, 16 * MIB)
        module = ReclaimModule(kernel, attrs=FAST)
        module.start(queue)
        queue.run_for(100 * MSEC)
        module.stop()
        checks = kernel.metrics.monitor_checks
        queue.run_for(100 * MSEC)
        assert kernel.metrics.monitor_checks == checks


class TestLruSortParams:
    def test_validation(self):
        with pytest.raises(ConfigError):
            LruSortParams(hot_thres=0.0)
        with pytest.raises(ConfigError):
            LruSortParams(cold_min_age_us=-1)


class TestLruSortModule:
    def test_sorts_hot_and_cold(self, queue):
        kernel = make_kernel()
        kernel.mmap(BASE, 64 * MIB)
        module = LruSortModule(
            kernel, LruSortParams(cold_min_age_us=200 * MSEC), FAST
        )
        module.start(queue)
        kernel.apply_access(BASE, BASE + 64 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 8 * MIB, touches_per_page=2000)],
            n_epochs=25,
        )
        stats = module.stats()
        assert stats["prioritized_bytes"] > 0
        assert stats["deprioritized_bytes"] > 0

    def test_protects_hot_pages_from_eviction(self, queue):
        """Under pressure, the sorted kernel must evict cold pages in
        preference to hot ones despite the coarse baseline LRU."""
        kernel = make_kernel()
        kernel.mmap(BASE, 64 * MIB)
        module = LruSortModule(
            kernel, LruSortParams(cold_min_age_us=200 * MSEC), FAST
        )
        module.start(queue)
        kernel.apply_access(BASE, BASE + 64 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 8 * MIB, touches_per_page=2000)],
            n_epochs=25,
        )
        victims = kernel.lru.select_victims(
            2048, rng=np.random.default_rng(1)
        )  # 8 MiB worth
        hot_evicted = sum(
            int(np.count_nonzero(idx < 8 * MIB // 4096)) for _, idx in victims
        )
        # At most a sliver of the hot 8 MiB gets picked.
        assert hot_evicted < 200

    def test_actions_are_lru_variants(self):
        kernel = make_kernel()
        module = LruSortModule(kernel, attrs=FAST)
        assert module.hot_scheme.action is Action.LRU_PRIO
        assert module.cold_scheme.action is Action.LRU_DEPRIO
