"""The scheme semantic analyzer (lint pass 1).

The fixture corpus ``tests/fixtures/bad.schemes`` seeds one defect per
line; the golden test pins the exact (line, code) multiset so a checker
regression can never silently drop a class.
"""

from __future__ import annotations

import logging
from pathlib import Path

import pytest

from repro.errors import SchemeError
from repro.lint import Severity, analyze_scheme_text, analyze_schemes, check_schemes
from repro.monitor.attrs import MonitorAttrs
from repro.runner.configs import ETHP_SCHEMES, PRCL_SCHEMES
from repro.schemes.actions import Action
from repro.schemes.engine import SchemesEngine
from repro.schemes.filters import AddressFilter
from repro.schemes.parser import parse_schemes
from repro.schemes.quotas import Quota
from repro.schemes.scheme import AccessPattern, Scheme
from repro.schemes.watermarks import Watermarks
from repro.units import MIB, MSEC, SEC

FIXTURES = Path(__file__).parent / "fixtures"


def codes_of(diagnostics):
    return sorted((d.line, d.code) for d in diagnostics)


class TestGoldenFixture:
    def test_bad_schemes_corpus(self):
        text = (FIXTURES / "bad.schemes").read_text()
        schemes, diagnostics = analyze_scheme_text(text, file="bad.schemes")
        assert len(schemes) == 7  # every line parses; defects are semantic
        assert codes_of(diagnostics) == [
            (7, "DS130"),   # pageout subset shadowed by line 6 pageout
            (9, "DS120"),   # nohugepage overlapping line 8 hugepage
            (10, "DS103"),  # 50ms..80ms age window under 100ms aggregation
            (11, "DS150"),  # pageout at min_freq 80% thrashes
            (12, "DS120"),  # willneed overlapping line 6 pageout
            (12, "DS120"),  # willneed overlapping line 7 pageout
        ]
        assert all(d.severity is Severity.ERROR for d in diagnostics)
        assert all(d.file == "bad.schemes" for d in diagnostics)

    def test_warn_fixture_is_warning_only(self):
        text = (FIXTURES / "warn.schemes").read_text()
        _, diagnostics = analyze_scheme_text(text)
        assert [d.code for d in diagnostics] == ["DS110"]
        assert diagnostics[0].severity is Severity.WARNING

    def test_paper_listing3_is_clean(self):
        # The paper's own Listing 3 (ethp + prcl) must pass untouched.
        _, diagnostics = analyze_scheme_text(ETHP_SCHEMES + PRCL_SCHEMES)
        assert diagnostics == []


class TestPerSchemeChecks:
    def test_ds101_parse_failure_does_not_abort(self):
        text = "not a scheme\n4K max min max 5s max pageout\n"
        schemes, diagnostics = analyze_scheme_text(text)
        assert len(schemes) == 1
        assert [(d.line, d.code) for d in diagnostics] == [(1, "DS101")]

    def test_ds102_unachievable_frequency_window(self):
        # 4 samples per aggregation: 30%..40% of 4 covers no integer.
        attrs = MonitorAttrs(
            sampling_interval_us=25 * MSEC,
            aggregation_interval_us=100 * MSEC,
            regions_update_interval_us=1 * SEC,
        )
        scheme = Scheme(
            pattern=AccessPattern(min_freq=0.3, max_freq=0.4), action=Action.STAT
        )
        diags = analyze_schemes([scheme], attrs)
        assert [d.code for d in diags] == ["DS102"]
        # The paper's 20-samples default has an integer in that window.
        assert analyze_schemes([scheme]) == []

    def test_ds103_age_window_below_aggregation(self):
        scheme = Scheme(
            pattern=AccessPattern(min_age_us=50 * MSEC, max_age_us=80 * MSEC),
            action=Action.PAGEOUT,
        )
        diags = analyze_schemes([scheme])
        assert [d.code for d in diags] == ["DS103"]

    def test_ds110_min_age_quantizes_to_zero(self):
        scheme = Scheme(
            pattern=AccessPattern(min_age_us=50 * MSEC), action=Action.STAT
        )
        diags = analyze_schemes([scheme])
        assert [(d.code, d.severity) for d in diags] == [("DS110", Severity.WARNING)]

    def test_ds110_max_age_only_below_aggregation(self):
        scheme = Scheme(
            pattern=AccessPattern(max_age_us=50 * MSEC), action=Action.STAT
        )
        diags = analyze_schemes([scheme])
        assert [d.code for d in diags] == ["DS110"]

    def test_ds104_wfreq_without_write_tracking(self):
        scheme = Scheme(pattern=AccessPattern(min_wfreq=0.2), action=Action.PAGEOUT)
        assert [d.code for d in analyze_schemes([scheme])] == ["DS104"]
        tracking = MonitorAttrs(track_writes=True)
        assert analyze_schemes([scheme], tracking) == []

    def test_ds150_thrash_check_absorbed(self):
        scheme = Scheme(pattern=AccessPattern(min_freq=0.8), action=Action.PAGEOUT)
        diags = analyze_schemes([scheme])
        assert [d.code for d in diags] == ["DS150"]
        assert diags[0].severity is Severity.ERROR

    def test_ds140_zero_quota(self):
        scheme = Scheme(
            pattern=AccessPattern(),
            action=Action.PAGEOUT,
            quota=Quota(size_bytes=0, weight_nr_accesses=0.9, weight_age=0.1),
        )
        diags = analyze_schemes([scheme])
        assert [d.code for d in diags] == ["DS140"]
        assert "weights are moot" in diags[0].message

    def test_ds141_weights_on_unlimited_quota(self):
        scheme = Scheme(
            pattern=AccessPattern(),
            action=Action.PAGEOUT,
            quota=Quota(weight_nr_accesses=0.9, weight_age=0.1),
        )
        assert [d.code for d in analyze_schemes([scheme])] == ["DS141"]
        # The default weights on an unlimited quota stay silent.
        quiet = Scheme(pattern=AccessPattern(), action=Action.PAGEOUT, quota=Quota())
        assert analyze_schemes([quiet]) == []

    def test_ds142_point_watermark_band(self):
        scheme = Scheme(
            pattern=AccessPattern(),
            action=Action.PAGEOUT,
            watermarks=Watermarks(high=0.5, mid=0.2, low=0.2),
        )
        assert [d.code for d in analyze_schemes([scheme])] == ["DS142"]
        ok = Scheme(
            pattern=AccessPattern(),
            action=Action.PAGEOUT,
            watermarks=Watermarks.always_on(),
        )
        assert analyze_schemes([ok]) == []


class TestPairwiseChecks:
    def _pageout(self, **pattern):
        return Scheme(pattern=AccessPattern(**pattern), action=Action.PAGEOUT)

    def test_ds120_requires_overlap(self):
        # Listing 3 shape: hugepage for >=25% freq, nohugepage for 0-freq
        # only — disjoint frequency windows, no conflict.
        hot = Scheme(pattern=AccessPattern(min_freq=0.25), action=Action.HUGEPAGE)
        cold = Scheme(pattern=AccessPattern(max_freq=0.0), action=Action.NOHUGEPAGE)
        assert analyze_schemes([hot, cold]) == []
        clash = Scheme(pattern=AccessPattern(min_freq=0.3), action=Action.NOHUGEPAGE)
        assert [d.code for d in analyze_schemes([hot, clash])] == ["DS120"]

    def test_ds121_opposing_hints_warn(self):
        prio = Scheme(pattern=AccessPattern(), action=Action.LRU_PRIO)
        deprio = Scheme(pattern=AccessPattern(min_freq=0.5), action=Action.LRU_DEPRIO)
        diags = analyze_schemes([prio, deprio])
        assert [(d.code, d.severity) for d in diags] == [
            ("DS121", Severity.WARNING)
        ]

    def test_ds130_shadowed_subset(self):
        broad = self._pageout(min_age_us=5 * SEC)
        narrow = self._pageout(min_size=2 * MIB, min_age_us=10 * SEC)
        diags = analyze_schemes([broad, narrow])
        assert [(d.line, d.code) for d in diags] == [(2, "DS130")]

    def test_ds130_not_fired_when_earlier_is_restricted(self):
        narrow = self._pageout(min_size=2 * MIB, min_age_us=10 * SEC)
        for restricted in (
            Scheme(
                pattern=AccessPattern(min_age_us=5 * SEC),
                action=Action.PAGEOUT,
                quota=Quota(size_bytes=64 * MIB),
            ),
            Scheme(
                pattern=AccessPattern(min_age_us=5 * SEC),
                action=Action.PAGEOUT,
                watermarks=Watermarks(),
            ),
            Scheme(
                pattern=AccessPattern(min_age_us=5 * SEC),
                action=Action.PAGEOUT,
                filters=[AddressFilter(0, 4096)],
            ),
        ):
            assert analyze_schemes([restricted, narrow]) == []

    def test_ds130_not_fired_across_different_actions(self):
        stat = Scheme(pattern=AccessPattern(), action=Action.STAT)
        narrow = self._pageout(min_size=2 * MIB)
        # STAT consumes nothing; a later pageout is reachable.
        assert analyze_schemes([stat, narrow]) == []

    def test_ds130_same_action_redundant(self):
        cold_all = Scheme(pattern=AccessPattern(), action=Action.COLD)
        cold_big = Scheme(pattern=AccessPattern(min_size=MIB), action=Action.COLD)
        assert [d.code for d in analyze_schemes([cold_all, cold_big])] == ["DS130"]
        # Reverse order: the broad scheme is NOT a subset of the narrow one.
        assert analyze_schemes([cold_big, cold_all]) == []


class TestCheckSchemes:
    def test_raises_on_errors(self):
        scheme = Scheme(pattern=AccessPattern(min_freq=0.8), action=Action.PAGEOUT)
        with pytest.raises(SchemeError, match="DS150"):
            check_schemes([scheme])

    def test_logs_warnings_and_returns(self, caplog):
        scheme = Scheme(
            pattern=AccessPattern(min_age_us=50 * MSEC), action=Action.STAT
        )
        with caplog.at_level(logging.WARNING, logger="repro.lint"):
            diags = check_schemes([scheme], logger=logging.getLogger("repro.lint"))
        assert [d.code for d in diags] == ["DS110"]
        assert any("DS110" in record.message for record in caplog.records)

    def test_clean_set_is_silent(self):
        schemes = parse_schemes(ETHP_SCHEMES + PRCL_SCHEMES)
        assert check_schemes(schemes) == []


class TestValidateShim:
    def test_validate_still_rejects_thrash(self, kernel):
        scheme = Scheme(pattern=AccessPattern(min_freq=0.8), action=Action.PAGEOUT)
        engine = SchemesEngine(kernel, [scheme])
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SchemeError):
                engine.validate()

    def test_validate_passes_clean_schemes(self, kernel):
        engine = SchemesEngine(kernel, parse_schemes(PRCL_SCHEMES))
        with pytest.warns(DeprecationWarning):
            engine.validate()
