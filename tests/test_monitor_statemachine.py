"""Stateful property test: the monitor under arbitrary driving.

A hypothesis rule-based state machine interleaves workload epochs,
monitor ticks, layout changes and scheme applications in random orders
and checks the structural invariants after every step:

* regions are sorted, non-overlapping, and at least one page each;
* the region count respects the configured maximum;
* per-region counters stay within their theoretical ceilings;
* page state stays consistent (present/swapped disjoint, huge chunks
  fully resident, bloat pages resident).
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.monitor.attrs import MonitorAttrs
from repro.monitor.core import DataAccessMonitor
from repro.monitor.primitives import VirtualPrimitive
from repro.schemes.engine import SchemesEngine
from repro.schemes.parser import parse_scheme
from repro.sim.clock import EventQueue
from repro.sim.kernel import SimKernel
from repro.sim.machine import GuestSpec, get_instance
from repro.sim.pagetable import PAGES_PER_HUGE
from repro.sim.swap import ZramDevice
from repro.units import MIB, MSEC

BASE = 0x7F00_0000_0000
FOOTPRINT = 64 * MIB

ATTRS = MonitorAttrs(
    sampling_interval_us=1 * MSEC,
    aggregation_interval_us=10 * MSEC,
    regions_update_interval_us=100 * MSEC,
    min_nr_regions=5,
    max_nr_regions=100,
)


class MonitorMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        guest = GuestSpec(host=get_instance("i3.metal"), vcpus=4, dram_bytes=256 * MIB)
        self.kernel = SimKernel(guest, swap=ZramDevice(128 * MIB), seed=11)
        self.kernel.mmap(BASE, FOOTPRINT)
        self.queue = EventQueue()
        self.monitor = DataAccessMonitor(VirtualPrimitive(self.kernel), ATTRS, seed=13)
        self.engine = SchemesEngine(
            self.kernel,
            [parse_scheme("4K max min min 30ms max pageout", ATTRS)],
        )
        self.monitor.attach_engine(self.engine)
        self.monitor.start(self.queue)
        self.extra_vmas = []

    # -- driving rules ---------------------------------------------------
    @rule(
        eighth=st.integers(min_value=0, max_value=7),
        touches=st.sampled_from([1, 50, 2000]),
        writes=st.sampled_from([0.0, 1.0]),
    )
    def touch_region(self, eighth, touches, writes):
        start = BASE + eighth * FOOTPRINT // 8
        self.kernel.begin_epoch()
        self.kernel.apply_access(
            start,
            start + FOOTPRINT // 8,
            self.queue.clock.now,
            10 * MSEC,
            touches_per_page=touches,
            write_fraction=writes,
            stall_weight=0.0,
        )

    @rule(ticks=st.integers(min_value=1, max_value=30))
    def advance_time(self, ticks):
        self.queue.run_for(ticks * MSEC)

    @rule()
    def mmap_extra(self):
        if len(self.extra_vmas) < 3:
            offset = (len(self.extra_vmas) + 2) * 256 * MIB
            self.extra_vmas.append(self.kernel.mmap(BASE + offset, 8 * MIB))

    @rule()
    def munmap_extra(self):
        if self.extra_vmas:
            self.kernel.munmap(self.extra_vmas.pop())

    @rule(eighth=st.integers(min_value=0, max_value=7))
    def promote_huge(self, eighth):
        start = BASE + eighth * FOOTPRINT // 8
        self.kernel.apply_access(
            start, start + 2 * MIB, self.queue.clock.now, 10 * MSEC, stall_weight=0.0
        )
        self.kernel.madvise_hugepage(start, start + 2 * MIB, self.queue.clock.now)

    @rule(eighth=st.integers(min_value=0, max_value=7))
    def demote_huge(self, eighth):
        start = BASE + eighth * FOOTPRINT // 8
        self.kernel.madvise_nohugepage(start, start + 2 * MIB, self.queue.clock.now)

    # -- invariants --------------------------------------------------------
    @invariant()
    def regions_well_formed(self):
        self.monitor.check_invariants()
        assert self.monitor.nr_regions() <= ATTRS.max_nr_regions

    @invariant()
    def counters_within_ceilings(self):
        for region in self.monitor.regions:
            assert 0 <= region.nr_accesses <= ATTRS.max_nr_accesses
            assert 0 <= region.nr_writes <= ATTRS.max_nr_accesses
            assert region.age >= 0

    @invariant()
    def page_state_consistent(self):
        for vma in self.kernel.space.vmas:
            pt = vma.pages
            assert not (pt.present & pt.swapped).any()
            assert not (pt.bloat & ~pt.present).any()
            for chunk in np.nonzero(pt.chunk_huge)[0]:
                lo = int(chunk) * PAGES_PER_HUGE
                assert pt.present[lo : lo + PAGES_PER_HUGE].all()

    @invariant()
    def frame_accounting_consistent(self):
        total_frames = 0
        for vma in self.kernel.space.vmas:
            pt = vma.pages
            have_frame = pt.frame >= 0
            # Present pages (outside a mid-fault window, which cannot
            # happen between rules) all hold frames and vice versa.
            assert (have_frame == pt.present).all()
            total_frames += int(np.count_nonzero(have_frame))
        assert total_frames == self.kernel.frames.allocated


MonitorMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)
TestMonitorMachine = MonitorMachine.TestCase
