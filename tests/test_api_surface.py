"""API-surface hygiene: exports resolve, public items are documented.

A downstream user navigates this library through ``__all__`` and
docstrings; these tests keep both honest across every package.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.fleet",
    "repro.modules",
    "repro.monitor",
    "repro.runner",
    "repro.schemes",
    "repro.sim",
    "repro.trace",
    "repro.tuning",
    "repro.workloads",
]

MODULES = sorted(
    name
    for package in PACKAGES
    for _, name, _ in pkgutil.iter_modules(
        importlib.import_module(package).__path__,
        prefix=package + ".",
    )
)


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_classes_and_functions_documented(package):
    module = importlib.import_module(package)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(f"{package}.{name}")
            if inspect.isclass(obj):
                for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                    if meth_name.startswith("_"):
                        continue
                    if meth.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited implementation
                    # getdoc() walks the MRO, so an override documented
                    # by its base-class contract counts as documented.
                    if not inspect.getdoc(getattr(obj, meth_name)):
                        undocumented.append(f"{package}.{name}.{meth_name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_quick_run_is_lazy_but_works():
    result = repro.quick_run(
        "splash2x/volrend", config="baseline", time_scale=0.05
    )
    assert result.runtime_us > 0
