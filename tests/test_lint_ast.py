"""The determinism AST linter (lint pass 2).

Each DT code gets positive and negative cases on synthetic modules; the
meta-test at the bottom pins the actual ``src/repro`` tree to zero
findings, so any new nondeterminism sneaks in only past a failing test.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import repro
from repro.lint import (
    LintConfig,
    Severity,
    apply_baseline,
    baseline_entry,
    diagnostics_from_json,
    lint_file,
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)


def lint(code, filename="mod.py", config=None):
    return lint_source(textwrap.dedent(code), filename, config)


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


class TestWallClock:
    def test_time_time_flagged(self):
        diags = lint("import time\nstamp = time.time()\n")
        assert codes_of(diags) == ["DT201"]
        assert diags[0].line == 2

    def test_from_import_alias_resolved(self):
        assert codes_of(lint("from time import time as now\nx = now()\n")) == ["DT201"]

    def test_datetime_now_flagged(self):
        assert codes_of(lint("import datetime\nd = datetime.datetime.now()\n")) == [
            "DT201"
        ]

    def test_perf_counter_allowed(self):
        # Monotonic timers are fine: they feed only volatile wall-clock
        # fields, never fingerprinted results.
        assert lint("import time\nt0 = time.perf_counter()\n") == []


class TestGlobalRandom:
    def test_random_module_flagged(self):
        assert codes_of(lint("import random\nx = random.random()\n")) == ["DT202"]

    def test_numpy_global_seed_flagged(self):
        assert codes_of(lint("import numpy as np\nnp.random.seed(0)\n")) == ["DT203"]

    def test_seedless_default_rng_flagged(self):
        assert codes_of(
            lint("import numpy as np\nrng = np.random.default_rng()\n")
        ) == ["DT203"]

    def test_seeded_default_rng_allowed(self):
        assert lint("import numpy as np\nrng = np.random.default_rng(7)\n") == []
        assert lint("import numpy as np\nrng = np.random.default_rng(seed=7)\n") == []

    def test_from_import_default_rng(self):
        assert codes_of(
            lint("from numpy.random import default_rng\nrng = default_rng()\n")
        ) == ["DT203"]

    def test_os_urandom_flagged(self):
        assert codes_of(lint("import os\nblob = os.urandom(16)\n")) == ["DT203"]


class TestEnvReads:
    def test_environ_read_in_library_flagged(self):
        diags = lint("import os\ntag = os.environ.get('X')\n", filename="runner.py")
        assert codes_of(diags) == ["DT204"]

    def test_getenv_flagged(self):
        assert codes_of(lint("import os\ntag = os.getenv('X')\n")) == ["DT204"]

    def test_allowed_at_cli_boundary(self):
        src = "import os\ntag = os.environ.get('X')\n"
        assert lint(src, filename="cli.py") == []
        assert lint(src, filename="pkg/conftest.py") == []


class TestSetIteration:
    def test_warning_in_ordinary_module(self):
        diags = lint("for x in {1, 2, 3}:\n    print(x)\n", filename="analysis.py")
        assert [(d.code, d.severity) for d in diags] == [("DT205", Severity.WARNING)]

    def test_error_in_fingerprint_module(self):
        diags = lint(
            "for x in {1, 2, 3}:\n    print(x)\n", filename="sweep/cache.py"
        )
        assert [(d.code, d.severity) for d in diags] == [("DT205", Severity.ERROR)]

    def test_sorted_set_allowed(self):
        assert lint("for x in sorted({1, 2, 3}):\n    pass\n") == []

    def test_set_comprehension_source_flagged(self):
        assert codes_of(lint("ys = [x for x in {1, 2}]\n")) == ["DT205"]


class TestFunctionDefaults:
    def test_mutable_default_flagged(self):
        assert codes_of(lint("def f(xs=[]):\n    return xs\n")) == ["DT206"]
        assert codes_of(lint("def f(m=dict()):\n    return m\n")) == ["DT206"]

    def test_none_default_non_optional_annotation(self):
        diags = lint("def f(n: int = None):\n    return n\n")
        assert [(d.code, d.severity) for d in diags] == [("DT207", Severity.WARNING)]

    def test_optional_annotations_allowed(self):
        assert (
            lint(
                """\
                from typing import Optional

                def f(n: Optional[int] = None, m: "int | None" = None):
                    return n, m
                """
            )
            == []
        )


class TestSuppressionAndParse:
    def test_same_line_disable(self):
        src = "import time\nstamp = time.time()  # daos-lint: disable=DT201\n"
        assert lint(src) == []

    def test_bare_disable_suppresses_all(self):
        src = "import time\nstamp = time.time()  # daos-lint: disable\n"
        assert lint(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = "import time\nstamp = time.time()  # daos-lint: disable=DT204\n"
        assert codes_of(lint(src)) == ["DT201"]

    def test_syntax_error_is_dt200(self):
        diags = lint("def broken(:\n")
        assert codes_of(diags) == ["DT200"]
        assert diags[0].severity is Severity.ERROR


class TestBaseline:
    def _write_bad_module(self, path):
        path.write_text("import time\n\nstamp = time.time()\n")

    def test_roundtrip_absorbs_findings(self, tmp_path):
        mod = tmp_path / "legacy.py"
        self._write_bad_module(mod)
        diags = lint_file(mod, display_path="legacy.py")
        assert codes_of(diags) == ["DT201"]

        baseline_path = tmp_path / ".daos-lint-baseline.json"
        write_baseline(baseline_path, diags, root=tmp_path)
        entries = load_baseline(baseline_path)
        assert len(entries) == 1

        kept, absorbed = apply_baseline(diags, entries, root=tmp_path)
        assert kept == [] and absorbed == 1

    def test_baseline_survives_line_drift(self, tmp_path):
        # Entries match on (file, code, stripped line text), so inserting
        # lines above the finding must not resurrect it.
        mod = tmp_path / "legacy.py"
        self._write_bad_module(mod)
        old = lint_file(mod, display_path="legacy.py")
        entries = [baseline_entry(d, root=tmp_path) for d in old]

        mod.write_text("import time\n\n# a new comment\n\nstamp = time.time()\n")
        new = lint_file(mod, display_path="legacy.py")
        assert new[0].line != old[0].line
        kept, absorbed = apply_baseline(new, entries, root=tmp_path)
        assert kept == [] and absorbed == 1

    def test_new_findings_not_absorbed(self, tmp_path):
        mod = tmp_path / "legacy.py"
        self._write_bad_module(mod)
        entries = [
            baseline_entry(d, root=tmp_path)
            for d in lint_file(mod, display_path="legacy.py")
        ]
        mod.write_text(
            "import time\nimport random\n"
            "stamp = time.time()\nx = random.random()\n"
        )
        kept, absorbed = apply_baseline(
            lint_file(mod, display_path="legacy.py"), entries, root=tmp_path
        )
        assert absorbed == 1
        assert codes_of(kept) == ["DT202"]

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []


class TestReporters:
    def test_json_roundtrip(self):
        diags = lint("import time\nstamp = time.time()\n", filename="a/b.py")
        payload = render_json(diags)
        back = diagnostics_from_json(payload)
        assert back == diags

    def test_text_render_mentions_code_and_location(self):
        diags = lint("import time\nstamp = time.time()\n", filename="a/b.py")
        text = render_text(diags)
        assert "a/b.py:2" in text and "DT201" in text and "error" in text


class TestMetaSourceTreeClean:
    def test_repro_package_has_no_findings(self):
        """The shipped tree must satisfy its own determinism linter —
        including warnings, so the committed baseline can stay empty."""
        pkg = Path(repro.__file__).resolve().parent
        diags = lint_paths([pkg], LintConfig(), relative_to=pkg.parent)
        assert diags == [], render_text(diags)
