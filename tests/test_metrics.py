"""Metrics accounting: runtime breakdown and memory timelines."""

import pytest

from repro.sim.metrics import KernelMetrics, MemoryTimeline, RuntimeBreakdown


class TestRuntimeBreakdown:
    def test_total_sums_components(self):
        b = RuntimeBreakdown(
            compute_us=10,
            memory_stall_us=5,
            major_fault_us=3,
            minor_fault_us=2,
            swapout_us=1,
            thp_alloc_us=4,
            monitor_interference_us=0.5,
        )
        assert b.total_us() == pytest.approx(25.5)

    def test_as_dict_roundtrip(self):
        b = RuntimeBreakdown(compute_us=7)
        d = b.as_dict()
        assert d["compute_us"] == 7
        assert d["total_us"] == b.total_us()


class TestMemoryTimeline:
    def test_time_weighted_average(self):
        t = MemoryTimeline()
        t.record(0, 100, 100)
        t.record(10, 200, 200)  # 100 held for 10 units
        t.record(30, 0, 0)  # 200 held for 20 units
        assert t.avg_rss() == pytest.approx((100 * 10 + 200 * 20) / 30)

    def test_single_sample_average(self):
        t = MemoryTimeline()
        t.record(5, 42, 50)
        assert t.avg_rss() == 42
        assert t.avg_system() == 50

    def test_peaks(self):
        t = MemoryTimeline()
        t.record(0, 10, 10)
        t.record(1, 99, 120)
        t.record(2, 5, 5)
        assert t.peak_rss == 99
        assert t.peak_system == 120

    def test_out_of_order_rejected(self):
        t = MemoryTimeline()
        t.record(10, 1, 1)
        with pytest.raises(ValueError):
            t.record(5, 1, 1)

    def test_same_time_samples_allowed(self):
        t = MemoryTimeline()
        t.record(10, 1, 1)
        t.record(10, 2, 2)
        assert t.samples == 2


class TestKernelMetrics:
    def test_as_dict_contains_everything(self):
        m = KernelMetrics()
        m.major_faults = 3
        m.memory.record(0, 100, 100)
        d = m.as_dict()
        assert d["major_faults"] == 3
        assert "avg_rss_bytes" in d
        assert "total_us" in d
