"""Metrics accounting: runtime breakdown and memory timelines."""

from dataclasses import fields

import pytest

from repro.sim.metrics import KernelMetrics, MemoryTimeline, RuntimeBreakdown


class TestRuntimeBreakdown:
    def test_total_sums_components(self):
        b = RuntimeBreakdown(
            compute_us=10,
            memory_stall_us=5,
            major_fault_us=3,
            minor_fault_us=2,
            swapout_us=1,
            thp_alloc_us=4,
            monitor_interference_us=0.5,
        )
        assert b.total_us() == pytest.approx(25.5)

    def test_as_dict_roundtrip(self):
        b = RuntimeBreakdown(compute_us=7)
        d = b.as_dict()
        assert d["compute_us"] == 7
        assert d["total_us"] == b.total_us()

    def test_reducers_cover_every_field(self):
        """total_us/as_dict are derived from the dataclass fields, so a
        newly added component can never be silently dropped."""
        b = RuntimeBreakdown()
        names = [f.name for f in fields(b)]
        for i, name in enumerate(names):
            setattr(b, name, float(10**i))
        assert b.total_us() == pytest.approx(sum(10**i for i in range(len(names))))
        d = b.as_dict()
        assert set(d) == set(names) | {"total_us"}


class TestMemoryTimeline:
    def test_time_weighted_average(self):
        t = MemoryTimeline()
        t.record(0, 100, 100)
        t.record(10, 200, 200)  # 100 held for 10 units
        t.record(30, 0, 0)  # 200 held for 20 units
        assert t.avg_rss() == pytest.approx((100 * 10 + 200 * 20) / 30)

    def test_single_sample_average(self):
        t = MemoryTimeline()
        t.record(5, 42, 50)
        assert t.avg_rss() == 42
        assert t.avg_system() == 50

    def test_peaks(self):
        t = MemoryTimeline()
        t.record(0, 10, 10)
        t.record(1, 99, 120)
        t.record(2, 5, 5)
        assert t.peak_rss == 99
        assert t.peak_system == 120

    def test_out_of_order_rejected(self):
        t = MemoryTimeline()
        t.record(10, 1, 1)
        with pytest.raises(ValueError):
            t.record(5, 1, 1)

    def test_same_time_samples_allowed(self):
        t = MemoryTimeline()
        t.record(10, 1, 1)
        t.record(10, 2, 2)
        assert t.samples == 2


class TestKernelMetrics:
    def test_as_dict_contains_everything(self):
        m = KernelMetrics()
        m.major_faults = 3
        m.memory.record(0, 100, 100)
        d = m.as_dict()
        assert d["major_faults"] == 3
        assert "avg_rss_bytes" in d
        assert "total_us" in d

    def test_as_dict_tracks_scalar_fields(self):
        """Every scalar counter field appears in the flat dict."""
        m = KernelMetrics()
        d = m.as_dict()
        for f in fields(m):
            if f.name in ("runtime", "memory"):
                continue
            assert f.name in d, f"counter {f.name} missing from as_dict"
