"""SchemesEngine: application against live monitoring, quotas, watermarks."""

import pytest

from repro.errors import SchemeError
from repro.monitor.attrs import MonitorAttrs
from repro.monitor.core import DataAccessMonitor
from repro.monitor.primitives import VirtualPrimitive
from repro.schemes.actions import Action
from repro.schemes.engine import SchemesEngine
from repro.schemes.parser import parse_scheme
from repro.schemes.quotas import Quota, priority
from repro.schemes.scheme import AccessPattern, Scheme
from repro.schemes.stats import SchemeStats, WssEstimator
from repro.schemes.watermarks import Watermarks
from repro.units import MIB, MSEC, SEC, UNLIMITED

from tests.helpers import BASE, run_epochs


def stack(kernel, fast_attrs, queue, schemes):
    monitor = DataAccessMonitor(VirtualPrimitive(kernel), fast_attrs, seed=3)
    engine = SchemesEngine(kernel, schemes)
    monitor.attach_engine(engine)
    monitor.start(queue)
    return monitor, engine


class TestEngineApplication:
    def test_pageout_scheme_reclaims_cold_memory(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        scheme = parse_scheme("4K max min min 200ms max pageout", fast_attrs)
        stack(kernel, fast_attrs, queue, [scheme])
        # Hot first MiB, cold rest (touched once).
        kernel.apply_access(BASE, BASE + 64 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + MIB, touches_per_page=2000)],
            n_epochs=20,
        )
        assert kernel.rss_bytes() < 16 * MIB  # most of the cold 63 MiB went out
        assert kernel.rss_bytes() >= MIB  # the hot part stayed
        assert scheme.stats.nr_applied > 0

    def test_stat_scheme_touches_nothing(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        scheme = parse_scheme("min max min max min max stat", fast_attrs)
        stack(kernel, fast_attrs, queue, [scheme])
        run_epochs(
            kernel,
            queue,
            [dict(start=BASE, end=BASE + 8 * MIB, touches_per_page=1000)],
            n_epochs=10,
        )
        assert kernel.rss_bytes() == 8 * MIB
        assert scheme.stats.sz_tried > 0
        assert scheme.stats.nr_intervals > 0

    def test_engine_applies_schemes_in_order(self, kernel, fast_attrs):
        first = Scheme(pattern=AccessPattern(), action=Action.STAT)
        second = Scheme(pattern=AccessPattern(), action=Action.STAT)
        engine = SchemesEngine(kernel, [first, second])
        assert engine.schemes == [first, second]

    def test_replace_schemes(self, kernel):
        engine = SchemesEngine(kernel)
        scheme = Scheme(pattern=AccessPattern(), action=Action.STAT)
        engine.replace_schemes([scheme])
        assert engine.schemes == [scheme]

    def test_validate_rejects_hot_pageout(self, kernel):
        scheme = Scheme(
            pattern=AccessPattern(min_freq=0.8), action=Action.PAGEOUT
        )
        engine = SchemesEngine(kernel, [scheme])
        with pytest.warns(DeprecationWarning), pytest.raises(SchemeError):
            engine.validate()

    def test_describe(self, kernel, fast_attrs):
        scheme = parse_scheme("4K max min min 5s max pageout", fast_attrs)
        engine = SchemesEngine(kernel, [scheme])
        assert "pageout" in engine.describe()
        assert SchemesEngine(kernel).describe() == "(no schemes installed)"


class TestQuota:
    def test_unlimited_by_default(self):
        quota = Quota()
        assert not quota.limited
        assert quota.remaining(0) == UNLIMITED

    def test_budget_consumed_and_reset(self):
        quota = Quota(size_bytes=10 * MIB, reset_interval_us=1 * SEC)
        assert quota.remaining(0) == 10 * MIB
        quota.charge(4 * MIB, 0)
        assert quota.remaining(100) == 6 * MIB
        # After the window rolls, the budget refills.
        assert quota.remaining(2 * SEC) == 10 * MIB

    def test_invalid_quota_rejected(self):
        with pytest.raises(SchemeError):
            Quota(size_bytes=-1)
        with pytest.raises(SchemeError):
            Quota(reset_interval_us=0)

    def test_priority_prefers_cold_for_pageout(self):
        cold_old = priority(0, 100, 20, prefer_cold=True)
        hot_young = priority(20, 0, 20, prefer_cold=True)
        assert cold_old > hot_young

    def test_priority_prefers_hot_for_promotion(self):
        hot = priority(20, 50, 20, prefer_cold=False)
        cold = priority(0, 50, 20, prefer_cold=False)
        assert hot > cold

    def test_quota_caps_engine_application(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        scheme = parse_scheme("4K max min min 100ms max pageout", fast_attrs)
        scheme.quota = Quota(size_bytes=1 * MIB, reset_interval_us=10 * SEC)
        stack(kernel, fast_attrs, queue, [scheme])
        kernel.apply_access(BASE, BASE + 32 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(kernel, queue, [], n_epochs=10)
        # At most the quota per window (one window in this run) +
        # region rounding, far below the unrestricted 32 MiB.
        assert scheme.stats.sz_applied <= 2 * MIB

    def test_quota_partial_application_splits_regions(self, kernel, fast_attrs, queue):
        """A region bigger than the remaining budget is applied
        partially (upstream splits it at the budget boundary) rather
        than skipped, so savings accumulate window by window."""
        kernel.mmap(BASE, 64 * MIB)
        scheme = parse_scheme("4K max min min 100ms max pageout", fast_attrs)
        scheme.quota = Quota(size_bytes=1 * MIB, reset_interval_us=1 * SEC)
        stack(kernel, fast_attrs, queue, [scheme])
        kernel.apply_access(BASE, BASE + 32 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(kernel, queue, [], n_epochs=50)
        # ~5 windows of 1 MiB each must have been reclaimed despite every
        # matching region being far larger than one window's budget.
        assert 3 * MIB <= scheme.stats.sz_applied <= 8 * MIB


class TestWatermarks:
    def test_always_on(self):
        wm = Watermarks.always_on()
        assert wm.update(0.5)
        assert wm.update(1.0)

    def test_activation_band(self):
        wm = Watermarks(high=0.9, mid=0.5, low=0.1)
        assert not wm.update(0.95)  # plenty free: stay off
        assert wm.update(0.4)  # below mid: activate
        assert wm.update(0.8)  # hysteresis: stays on below high
        assert not wm.update(0.95)  # above high: off again

    def test_low_cutoff(self):
        wm = Watermarks(high=0.9, mid=0.5, low=0.1)
        wm.update(0.4)
        assert not wm.update(0.05)  # critical: emergency reclaim's job

    def test_invalid_order_rejected(self):
        with pytest.raises(SchemeError):
            Watermarks(high=0.2, mid=0.5, low=0.1)

    def test_out_of_range_metric_rejected(self):
        with pytest.raises(SchemeError):
            Watermarks().update(1.5)

    def test_watermark_gates_engine(self, kernel, fast_attrs, queue):
        kernel.mmap(BASE, 64 * MIB)
        scheme = parse_scheme("4K max min min 100ms max pageout", fast_attrs)
        # Guest has 256 MiB and the workload uses ~64 MiB, so free stays
        # around 75% — above mid=0.5 the scheme must never activate.
        scheme.watermarks = Watermarks(high=0.9, mid=0.5, low=0.1)
        stack(kernel, fast_attrs, queue, [scheme])
        kernel.apply_access(BASE, BASE + 32 * MIB, now=0, epoch_us=100 * MSEC)
        run_epochs(kernel, queue, [], n_epochs=10)
        assert scheme.stats.nr_applied == 0
        assert kernel.rss_bytes() == 32 * MIB


class TestStats:
    def test_counters(self):
        stats = SchemeStats()
        stats.record_tried(100)
        stats.record_tried(200)
        stats.record_applied(150)
        assert stats.nr_tried == 2
        assert stats.sz_tried == 300
        assert stats.nr_applied == 1
        assert stats.sz_applied == 150

    def test_avg_tried_per_interval(self):
        stats = SchemeStats()
        stats.nr_intervals = 4
        stats.record_tried(100)
        stats.record_tried(100)
        assert stats.avg_tried_bytes_per_interval() == 50.0

    def test_wss_estimator_percentiles(self):
        est = WssEstimator()
        for i, value in enumerate([10, 20, 30, 40, 50]):
            est.record(i, value)
        assert est.percentile(0) == 10
        assert est.percentile(50) == 30
        assert est.percentile(100) == 50
        assert est.average() == 30

    def test_wss_estimator_empty(self):
        est = WssEstimator()
        assert est.percentile(50) == 0.0
        assert est.average() == 0.0
