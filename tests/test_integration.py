"""End-to-end integration: the paper's qualitative claims on small runs.

These tests exercise the full stack (workload → kernel → monitor →
schemes engine → results) and assert the *shape* of each headline
result, on reduced-scale runs so the suite stays fast.
"""

import pytest

from repro.runner.configs import prcl_config
from repro.runner.experiment import autotune_scheme, run_experiment
from repro.runner.results import normalize
from repro.units import MIB, SEC
from repro.workloads.base import WorkloadSpec
from repro.workloads.patterns import ColdInit, CyclicSweep, Hotspot, OnOffHotspot
from repro.workloads.serverless import serverless_spec


def spec_cold_heavy():
    """freqmine-like: most memory cold after init, small hot core."""
    return WorkloadSpec(
        name="coldheavy",
        suite="test",
        footprint=192 * MIB,
        duration_us=30 * SEC,
        components=(
            ColdInit(offset=0, size=160 * MIB, init_us=2 * SEC),
            Hotspot(offset=160 * MIB, size=32 * MIB, touches_per_sec=2000),
        ),
        compute_share=0.8,
        mem_share=0.15,
    )


def spec_cyclic(period_s=8, active=0.4):
    """ocean-like: big working set revisited periodically."""
    return WorkloadSpec(
        name="cyclic",
        suite="test",
        footprint=192 * MIB,
        duration_us=40 * SEC,
        components=(
            CyclicSweep(
                offset=0,
                size=160 * MIB,
                period_us=period_s * SEC,
                active_share=active,
                touches_per_sec=600,
                stall_boost=6.0,
            ),
            Hotspot(offset=160 * MIB, size=32 * MIB, touches_per_sec=2000),
        ),
        compute_share=0.5,
        mem_share=0.5,
        tlb_benefit=1.0,
    )


def spec_sparse():
    """ocean_ncp-like: sparse residency inside 2 MiB chunks."""
    return WorkloadSpec(
        name="sparse",
        suite="test",
        footprint=192 * MIB,
        duration_us=30 * SEC,
        components=(
            Hotspot(offset=0, size=160 * MIB, touches_per_sec=1500, stride=2),
        ),
        compute_share=0.5,
        mem_share=0.5,
        tlb_benefit=1.0,
    )


class TestProactiveReclamation:
    """§4.2 'Effects of prcl'."""

    def test_cold_heavy_big_saving_small_slowdown(self):
        spec = spec_cold_heavy()
        base = run_experiment(spec, config="baseline", seed=0)
        prcl = run_experiment(spec, config="prcl", seed=0)
        n = normalize(prcl, base)
        assert n.memory_saving > 0.5
        assert n.slowdown < 0.05

    def test_cyclic_workload_thrashes(self):
        spec = spec_cyclic()
        base = run_experiment(spec, config="baseline", seed=0)
        prcl = run_experiment(spec, config="prcl", seed=0)
        n = normalize(prcl, base)
        assert n.slowdown > 0.10  # severe relative to the cold-heavy case
        assert n.memory_saving > 0.0

    def test_min_age_above_period_avoids_thrash(self):
        """The tuning insight: min_age past the re-touch period keeps the
        savings without the slowdown."""
        spec = spec_cyclic(period_s=6)
        base = run_experiment(spec, config="baseline", seed=0)
        aggressive = run_experiment(spec, config=prcl_config(2 * SEC), seed=0)
        gentle = run_experiment(spec, config=prcl_config(10 * SEC), seed=0)
        n_aggr = normalize(aggressive, base)
        n_gentle = normalize(gentle, base)
        assert n_gentle.slowdown < n_aggr.slowdown
        assert n_aggr.memory_saving >= n_gentle.memory_saving


class TestThp:
    """§4.2 'Effects of ethp'."""

    def test_thp_gains_performance_but_bloats(self):
        spec = spec_sparse()
        base = run_experiment(spec, config="baseline", seed=0)
        thp = run_experiment(spec, config="thp", seed=0)
        n = normalize(thp, base)
        assert n.performance > 1.05
        assert n.memory_efficiency < 0.75  # ~2x bloat on stride-2 residency

    def test_ethp_keeps_gain_removes_bloat(self):
        spec = spec_sparse()
        base = run_experiment(spec, config="baseline", seed=0)
        thp = normalize(run_experiment(spec, config="thp", seed=0), base)
        ethp = normalize(run_experiment(spec, config="ethp", seed=0), base)
        # Keeps a solid share of the performance gain...
        assert ethp.performance > 1.0 + 0.3 * (thp.performance - 1.0)
        # ...while having strictly better memory efficiency than thp.
        assert ethp.memory_efficiency > thp.memory_efficiency

    def test_demotion_returns_bloat_for_cooled_memory(self):
        """A workload whose hot set goes idle: ethp demotes and the
        bloat pages are freed."""
        spec = WorkloadSpec(
            name="cooling",
            suite="test",
            footprint=96 * MIB,
            duration_us=40 * SEC,
            components=(
                OnOffHotspot(
                    offset=0,
                    size=64 * MIB,
                    on_us=5 * SEC,
                    off_us=15 * SEC,
                    touches_per_sec=1200,
                    stride=4,
                ),
            ),
            compute_share=0.6,
            mem_share=0.3,
        )
        result = run_experiment(spec, config="ethp", seed=0)
        assert result.breakdown["thp_demotions"] > 0
        assert result.breakdown["thp_freed_pages"] > 0


class TestMonitoringOverhead:
    """§4.2 'Monitoring overhead' (Conclusion-3)."""

    def test_rec_overhead_small(self):
        spec = spec_cold_heavy()
        base = run_experiment(spec, config="baseline", seed=0)
        rec = run_experiment(spec, config="rec", seed=0)
        n = normalize(rec, base)
        assert n.slowdown < 0.04  # the paper's worst case is 4%
        assert rec.monitor_cpu_share < 0.03

    def test_prec_similar_to_rec_despite_bigger_target(self):
        spec = spec_cold_heavy()
        rec = run_experiment(spec, config="rec", seed=0)
        prec = run_experiment(spec, config="prec", seed=0)
        # prec monitors the whole guest DRAM (32 GiB) vs the workload's
        # 192 MiB, yet overhead stays within ~3x.
        assert prec.monitor_cpu_us < 3 * rec.monitor_cpu_us + 1

    def test_rec_does_not_change_memory(self):
        spec = spec_cold_heavy()
        base = run_experiment(spec, config="baseline", seed=0)
        rec = run_experiment(spec, config="rec", seed=0)
        assert rec.avg_rss_bytes == pytest.approx(base.avg_rss_bytes, rel=0.01)


class TestAutotuning:
    """§4.3: the tuner trades a little saving for much less slowdown."""

    def test_tuner_beats_manual_on_thrashing_workload(self):
        spec = spec_cyclic(period_s=8)
        tuning, base, tuned = _autotune_spec(spec)
        manual = run_experiment(spec, config="prcl", seed=1)
        n_manual = normalize(manual, base)
        n_tuned = normalize(tuned, base)
        assert n_tuned.slowdown < n_manual.slowdown

    def test_tuned_min_age_clears_retouch_period(self):
        spec = spec_cyclic(period_s=6)
        tuning, _, _ = _autotune_spec(spec)
        # The idle gap is ~3.6 s within a 6 s period; thrash happens for
        # min_age below it, so the tuner should land above ~2 s.
        assert tuning.best_param > 2.0


def _autotune_spec(spec, nr_samples=8, seed=1):
    """autotune_scheme() accepts workload names; route a raw spec
    through the same code path."""
    from repro.tuning.runtime import AutoTuner

    base = run_experiment(spec, config="baseline", seed=seed)

    def evaluate(min_age_s):
        run = run_experiment(
            spec, config=prcl_config(int(min_age_s * 1_000_000)), seed=seed
        )
        return run.runtime_us, run.avg_rss_bytes

    tuner = AutoTuner(
        evaluate, (base.runtime_us, base.avg_rss_bytes), 0.0, 20.0, seed=seed + 10
    )
    tuning = tuner.tune(nr_samples)
    tuned = run_experiment(
        spec, config=prcl_config(int(tuning.best_param * 1_000_000)), seed=seed
    )
    return tuning, base, tuned


class TestProduction:
    """§4.4 / Figure 9."""

    def test_serverless_memory_reclaimed(self):
        spec = serverless_spec(footprint_mib=128, duration_s=60)
        base = run_experiment(spec, config="baseline", swap="zram", seed=0)
        prcl = run_experiment(spec, config="prcl", swap="zram", seed=0)
        n = normalize(prcl, base)
        assert n.memory_saving > 0.6

    def test_file_swap_frees_more_system_memory_than_zram(self):
        spec = serverless_spec(footprint_mib=128, duration_s=60)
        results = {}
        for swap in ("zram", "file"):
            base = run_experiment(spec, config="baseline", swap=swap, seed=0)
            prcl = run_experiment(spec, config="prcl", swap=swap, seed=0)
            results[swap] = prcl.avg_system_bytes / base.avg_system_bytes
        assert results["file"] < results["zram"] < 1.0
